// Partition(beta) invariants: Section 2.1's clustering definition plus the
// quantitative guarantees of Lemma 2.1 and Theorem 2.2 (statistical smoke
// versions; the full sweeps are in bench_partition / bench_cluster_distance).
#include "cluster/exponential_shifts.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/partition_stats.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"

namespace radiocast::cluster {
namespace {

struct Family {
  const char* name;
  graph::Graph (*make)(util::Rng&);
};

graph::Graph make_grid(util::Rng&) { return graph::grid(20, 20); }
graph::Graph make_rgg(util::Rng& rng) {
  return graph::random_geometric(400, 0.08, rng);
}
graph::Graph make_gnp(util::Rng& rng) { return graph::gnp(400, 0.015, rng); }
graph::Graph make_poc(util::Rng&) { return graph::path_of_cliques(40, 10); }
graph::Graph make_tree(util::Rng& rng) {
  return graph::random_recursive_tree(400, rng);
}

class PartitionInvariants
    : public ::testing::TestWithParam<std::tuple<int, double>> {
 protected:
  static constexpr Family kFamilies[] = {
      {"grid", make_grid},   {"rgg", make_rgg},   {"gnp", make_gnp},
      {"cliques", make_poc}, {"tree", make_tree},
  };
};

TEST_P(PartitionInvariants, DefinitionHolds) {
  const auto [fam, beta] = GetParam();
  util::Rng rng(1000 + fam);
  const graph::Graph g = kFamilies[fam].make(rng);
  const Partition p = partition(g, beta, rng);
  // Every node is assigned.
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_TRUE(p.in_scope(v));
  }
  // Section 2.1: centre-of-anyone is centre-of-itself.
  EXPECT_TRUE(centers_consistent(p));
  // Section 2.1: the subgraph of each cluster is connected.
  EXPECT_TRUE(clusters_connected(g, p));
  // dist_to_center is the true intra-cluster BFS distance.
  EXPECT_TRUE(distances_consistent(g, p));
  // Tree parents are actual neighbours within the same cluster.
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    const graph::NodeId u = p.parent[v];
    if (u == v) continue;
    EXPECT_TRUE(g.has_edge(u, v));
    EXPECT_EQ(p.center[u], p.center[v]);
    EXPECT_EQ(p.dist_to_center[u] + 1, p.dist_to_center[v]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndBetas, PartitionInvariants,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(0.05, 0.2, 0.5)));

TEST(Partition, LargeBetaMakesSingletonHeavyClustering) {
  // beta -> infinity: delta ~ 0, every node is its own centre whp.
  util::Rng rng(5);
  const graph::Graph g = graph::grid(15, 15);
  const Partition p = partition(g, 50.0, rng);
  std::uint32_t centers = 0;
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    if (p.is_center(v)) ++centers;
  }
  EXPECT_GT(centers, g.node_count() / 2);
}

TEST(Partition, SmallBetaMakesFewClusters) {
  util::Rng rng(6);
  const graph::Graph g = graph::grid(15, 15);
  const Partition p = partition(g, 0.01, rng);
  const auto dense = p.dense_ids();
  EXPECT_LT(dense.center_of_id.size(), 10u);
}

TEST(Partition, CutFractionScalesWithBeta) {
  // Lemma 2.1: P[edge cut] = O(beta). Check the monotone trend and the
  // constant on a grid (large sample of edges).
  util::Rng rng(7);
  const graph::Graph g = graph::grid(40, 40);
  double prev = 0.0;
  for (double beta : {0.05, 0.1, 0.2, 0.4}) {
    double sum = 0;
    for (int trial = 0; trial < 5; ++trial) {
      sum += cut_fraction(g, partition(g, beta, rng));
    }
    const double frac = sum / 5;
    EXPECT_GE(frac, prev * 0.7);  // roughly monotone in beta
    EXPECT_LE(frac, 4.0 * beta);  // O(beta) with small constant
    prev = frac;
  }
}

TEST(Partition, StrongRadiusWithinLemmaBound) {
  // Lemma 2.1: strong diameter O(log n / beta) whp. Radius <= diameter.
  util::Rng rng(8);
  const graph::Graph g = graph::grid(30, 30);
  const double logn = util::safe_log2(g.node_count());
  for (double beta : {0.1, 0.3}) {
    const Partition p = partition(g, beta, rng);
    for (const auto& info : cluster_infos(g, p)) {
      EXPECT_LE(info.strong_radius, 4.0 * logn / beta) << "beta=" << beta;
      EXPECT_LE(info.strong_diameter_lb, 8.0 * logn / beta);
    }
  }
}

TEST(Partition, DeterministicGivenSeed) {
  util::Rng rng1(9), rng2(9);
  const graph::Graph g = graph::grid(10, 10);
  const Partition a = partition(g, 0.3, rng1);
  const Partition b = partition(g, 0.3, rng2);
  EXPECT_EQ(a.center, b.center);
  EXPECT_EQ(a.dist_to_center, b.dist_to_center);
  EXPECT_EQ(a.parent, b.parent);
}

TEST(Partition, InvalidBetaThrows) {
  util::Rng rng(10);
  const graph::Graph g = graph::path(4);
  EXPECT_THROW(partition(g, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(partition(g, -1.0, rng), std::invalid_argument);
}

TEST(PartitionMasked, RespectsMask) {
  util::Rng rng(11);
  const graph::Graph g = graph::path(10);
  std::vector<std::uint8_t> mask(10, 1);
  mask[4] = 0;  // cut the path in the middle
  const Partition p = partition_masked(g, 0.2, mask, rng);
  EXPECT_FALSE(p.in_scope(4));
  // Clusters cannot span the masked node.
  for (graph::NodeId v = 0; v < 4; ++v) {
    EXPECT_LE(p.center[v], 3u);
  }
  for (graph::NodeId v = 5; v < 10; ++v) {
    EXPECT_GE(p.center[v], 5u);
  }
}

TEST(PartitionMasked, SizeMismatchThrows) {
  util::Rng rng(12);
  const graph::Graph g = graph::path(5);
  std::vector<std::uint8_t> mask(4, 1);
  EXPECT_THROW(partition_masked(g, 0.2, mask, rng), std::invalid_argument);
}

TEST(PartitionRegions, FineClustersNeverCrossRegions) {
  // Algorithm 1 step 3: fine clusterings within coarse clusters.
  util::Rng rng(13);
  const graph::Graph g = graph::grid(25, 25);
  const Partition coarse = partition(g, 0.05, rng);
  const Partition fine = partition_regions(g, 0.5, coarse.center, rng);
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    ASSERT_TRUE(fine.in_scope(v));
    // v's fine centre lies in v's coarse cluster.
    EXPECT_EQ(coarse.center[fine.center[v]], coarse.center[v]);
  }
  EXPECT_TRUE(centers_consistent(fine));
  EXPECT_TRUE(distances_consistent(g, fine));
}

TEST(PartitionRegions, SizeMismatchThrows) {
  util::Rng rng(14);
  const graph::Graph g = graph::path(5);
  std::vector<graph::NodeId> region(4, 0);
  EXPECT_THROW(partition_regions(g, 0.2, region, rng),
               std::invalid_argument);
}

TEST(Partition, DenseIdsAreDenseAndConsistent) {
  util::Rng rng(15);
  const graph::Graph g = graph::grid(12, 12);
  const Partition p = partition(g, 0.2, rng);
  const auto d = p.dense_ids();
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    const auto id = d.id_of_node[v];
    ASSERT_LT(id, d.center_of_id.size());
    EXPECT_EQ(d.center_of_id[id], p.center[v]);
  }
  // Every dense id used at least once (its centre maps to it).
  for (std::size_t i = 0; i < d.center_of_id.size(); ++i) {
    EXPECT_EQ(d.id_of_node[d.center_of_id[i]], i);
  }
}

TEST(Partition, PrecomputeRoundsFormula) {
  // O(log^3 n / beta): doubling 1/beta doubles the cost.
  const auto r1 = precompute_rounds(1024, 0.1);
  const auto r2 = precompute_rounds(1024, 0.05);
  EXPECT_NEAR(static_cast<double>(r2) / r1, 2.0, 0.01);
  EXPECT_EQ(precompute_rounds(1024, 1.0), 1000u);  // log2^3(1024) = 1000
}

TEST(Theorem22Smoke, ExpectedDistanceWithinBoundForMostJ) {
  // Scaled-down Theorem 2.2 check: for a majority of j in the range, the
  // mean distance to centre is within a constant of log n/(beta log D).
  util::Rng rng(16);
  const graph::Graph g = graph::path_of_cliques(64, 8);  // D ~ 190
  const auto d = graph::diameter_double_sweep(g);
  const double logn = util::safe_log2(g.node_count());
  const double logd = util::safe_log2(d);
  const std::uint32_t j_lo = 1;
  const std::uint32_t j_hi = std::max<std::uint32_t>(
      j_lo, static_cast<std::uint32_t>(0.4 * logd));
  std::uint32_t good = 0, total = 0;
  for (std::uint32_t j = j_lo; j <= j_hi; ++j) {
    const double beta = std::ldexp(1.0, -static_cast<int>(j));
    double mean = 0;
    constexpr int kTrials = 8;
    for (int t = 0; t < kTrials; ++t) {
      mean += mean_dist_to_center(partition(g, beta, rng));
    }
    mean /= kTrials;
    ++total;
    if (mean <= 8.0 * logn / (beta * logd)) ++good;
  }
  // Theorem 2.2 promises probability >= 0.55 over j; with constant 8 the
  // scaled-down version should pass for at least half the j values.
  EXPECT_GE(2 * good, total);
}

}  // namespace
}  // namespace radiocast::cluster
