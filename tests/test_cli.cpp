#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace radiocast::util {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsSyntax) {
  const Cli c = make({"--n=100", "--beta=0.5"});
  EXPECT_EQ(c.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(c.get_double("beta", 0.0), 0.5);
}

TEST(Cli, SpaceSyntax) {
  const Cli c = make({"--name", "hello"});
  EXPECT_EQ(c.get_string("name", ""), "hello");
}

TEST(Cli, BareBooleanFlag) {
  const Cli c = make({"--verbose"});
  EXPECT_TRUE(c.get_bool("verbose", false));
  EXPECT_TRUE(c.has("verbose"));
  EXPECT_FALSE(c.has("quiet"));
}

TEST(Cli, BooleanSpellings) {
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=on"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=1"}).get_bool("x", false));
  EXPECT_FALSE(make({"--x=no"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=off"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
}

TEST(Cli, FallbacksWhenMissing) {
  const Cli c = make({});
  EXPECT_EQ(c.get_int("n", 42), 42);
  EXPECT_EQ(c.get_uint("m", 7u), 7u);
  EXPECT_DOUBLE_EQ(c.get_double("d", 1.5), 1.5);
  EXPECT_EQ(c.get_string("s", "dflt"), "dflt");
  EXPECT_TRUE(c.get_bool("b", true));
}

TEST(Cli, PositionalArguments) {
  const Cli c = make({"file1", "--n=3", "file2"});
  ASSERT_EQ(c.positional().size(), 2u);
  EXPECT_EQ(c.positional()[0], "file1");
  EXPECT_EQ(c.positional()[1], "file2");
}

TEST(Cli, SubcommandIsFirstPositional) {
  const Cli c = make({"run", "--n=3", "extra1", "extra2"});
  EXPECT_EQ(c.subcommand(), "run");
  const auto rest = c.subcommand_args();
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0], "extra1");
  EXPECT_EQ(rest[1], "extra2");
}

TEST(Cli, SubcommandEmptyWhenNoPositionals) {
  const Cli c = make({"--n=3"});
  EXPECT_EQ(c.subcommand(), "");
  EXPECT_TRUE(c.subcommand_args().empty());
}

TEST(Cli, MalformedNumberThrows) {
  const Cli c = make({"--n=abc"});
  EXPECT_THROW(c.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(c.get_double("n", 0), std::invalid_argument);
  EXPECT_THROW(c.get_bool("n", false), std::invalid_argument);
}

TEST(Cli, NegativeNumbersViaEquals) {
  const Cli c = make({"--delta=-5"});
  EXPECT_EQ(c.get_int("delta", 0), -5);
}

TEST(Cli, GetChoiceAcceptsListedValuesAndFallsBack) {
  const Cli c = make({"--medium=bitslice"});
  EXPECT_EQ(c.get_choice("medium", "scalar", {"scalar", "bitslice", "sharded"}),
            "bitslice");
  EXPECT_EQ(c.get_choice("absent", "scalar", {"scalar", "bitslice"}),
            "scalar");
}

TEST(Cli, GetChoiceRejectsUnknownValueListingLegalOnes) {
  const Cli c = make({"--medium=quantum"});
  try {
    c.get_choice("medium", "scalar", {"scalar", "bitslice", "sharded"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--medium"), std::string::npos);
    EXPECT_NE(msg.find("scalar"), std::string::npos);
    EXPECT_NE(msg.find("bitslice"), std::string::npos);
    EXPECT_NE(msg.find("sharded"), std::string::npos);
    EXPECT_NE(msg.find("quantum"), std::string::npos);
  }
}

TEST(Cli, UsageListsDescribedFlags) {
  Cli c = make({});
  c.describe("n", "number of nodes").describe("seed", "rng seed");
  const std::string u = c.usage();
  EXPECT_NE(u.find("--n"), std::string::npos);
  EXPECT_NE(u.find("number of nodes"), std::string::npos);
  EXPECT_NE(u.find("--seed"), std::string::npos);
}

TEST(Cli, RenderChoicesFormatsLegalValues) {
  constexpr std::string_view kNames[] = {"auto", "rowscan", "idplanes"};
  EXPECT_EQ(Cli::render_choices(kNames), "<auto|rowscan|idplanes>");
  EXPECT_EQ(Cli::render_choices({}), "<>");
}

// Choice-valued flags must enumerate their legal values in the usage
// output, matching exactly what get_choice accepts.
TEST(Cli, UsageEnumeratesChoiceValues) {
  Cli c = make({});
  c.describe("medium", "radio backend", {"scalar", "bitslice", "sharded"})
      .describe("recovery", "sender-recovery strategy",
                {"auto", "rowscan", "idplanes"});
  const std::string u = c.usage();
  EXPECT_NE(u.find("--medium=<scalar|bitslice|sharded>"), std::string::npos);
  EXPECT_NE(u.find("--recovery=<auto|rowscan|idplanes>"), std::string::npos);
  EXPECT_NE(u.find("radio backend"), std::string::npos);
  EXPECT_NE(u.find("sender-recovery strategy"), std::string::npos);
}

// ---- list-valued flags (sweep axes)

TEST(Cli, GetListSplitsCommas) {
  const Cli c = make({"--family=gnp,rgg,grid"});
  const auto list = c.get_list("family");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], "gnp");
  EXPECT_EQ(list[1], "rgg");
  EXPECT_EQ(list[2], "grid");
}

TEST(Cli, GetListMergesRepeatedOccurrences) {
  const Cli c = make({"--family=gnp,rgg", "--family", "grid"});
  const auto list = c.get_list("family");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[2], "grid");
  // Scalar accessors keep "last occurrence wins".
  EXPECT_EQ(c.get_string("family", ""), "grid");
}

TEST(Cli, GetListAbsentAndFallback) {
  const Cli c = make({});
  EXPECT_TRUE(c.get_list("family").empty());
  const auto fallback = c.get_list("family", "gnp,cliquepath");
  ASSERT_EQ(fallback.size(), 2u);
  EXPECT_EQ(fallback[1], "cliquepath");
  // A present flag beats the fallback.
  const Cli d = make({"--family=grid"});
  ASSERT_EQ(d.get_list("family", "gnp,cliquepath").size(), 1u);
}

TEST(Cli, GetListDropsEmptyItems) {
  const Cli c = make({"--n=1,,2,"});
  const auto list = c.get_list("n");
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], "1");
  EXPECT_EQ(list[1], "2");
}

TEST(Cli, RepeatedScalarFlagLastWins) {
  const Cli c = make({"--n=1", "--n=7"});
  EXPECT_EQ(c.get_int("n", 0), 7);
}

TEST(Cli, UsageRendersListFlags) {
  Cli c = make({});
  c.describe_list("family", "graph families to sweep");
  const std::string u = c.usage();
  EXPECT_NE(u.find("--family=v1,v2,..."), std::string::npos);
  EXPECT_NE(u.find("graph families to sweep"), std::string::npos);
}

}  // namespace
}  // namespace radiocast::util
