// Direct unit tests of PropagationEngine — the windowed machinery shared
// by both Compete processes (Algorithms 1-4).
#include "core/propagation.hpp"

#include <gtest/gtest.h>

#include "cluster/exponential_shifts.hpp"
#include "graph/generators.hpp"
#include "schedule/bfs_schedule.hpp"

namespace radiocast::core {
namespace {

using radio::kNoPayload;
using radio::Payload;

/// Single-region partition over a path rooted at node 0 (a degenerate
/// "coarse" layer), plus one fine schedule = the same tree. With one
/// cluster there are no foreign collisions: waves must be lossless.
struct PathFixture {
  graph::Graph g;
  cluster::Partition regions;
  cluster::Partition fine;
  std::unique_ptr<schedule::TreeSchedule> sched;

  explicit PathFixture(graph::NodeId n) : g(graph::path(n)) {
    regions.beta = 1.0;
    regions.center.assign(n, 0);
    regions.dist_to_center.assign(n, 0);
    regions.parent.assign(n, 0);
    regions.delta.assign(n, 0.0);
    fine.beta = 0.1;
    fine.center.assign(n, 0);
    fine.dist_to_center.resize(n);
    fine.parent.resize(n);
    fine.delta.assign(n, 0.0);
    for (graph::NodeId v = 0; v < n; ++v) {
      fine.dist_to_center[v] = v;
      fine.parent[v] = v == 0 ? 0 : v - 1;
    }
    sched = std::make_unique<schedule::TreeSchedule>(
        g, fine, schedule::ScheduleMode::kPipelined);
  }

  PropagationEngine::Config config(std::uint32_t hops,
                                   bool background) const {
    PropagationEngine::Config cfg;
    cfg.graph = &g;
    cfg.regions = &regions;
    cfg.scheds = {sched.get()};
    cfg.choose = [hops](graph::NodeId, std::uint64_t) {
      return WindowChoice{0, hops};
    };
    cfg.icp_background = background;
    cfg.seed = 7;
    return cfg;
  }
};

TEST(PropagationEngine, OutwardWaveCarriesCenterValue) {
  PathFixture fx(12);
  PropagationEngine eng(fx.config(/*hops=*/5, /*background=*/false));
  std::vector<Payload> best(12, kNoPayload);
  best[0] = 42;
  util::Rng rng(1);
  // One pass of 5 rounds informs nodes 1..5.
  for (int i = 0; i < 5; ++i) eng.step(best, rng);
  for (graph::NodeId v = 0; v <= 5; ++v) EXPECT_EQ(best[v], 42u) << v;
  EXPECT_EQ(best[6], kNoPayload);
}

TEST(PropagationEngine, InwardPassLiftsValueToCenter) {
  PathFixture fx(12);
  PropagationEngine eng(fx.config(5, false));
  std::vector<Payload> best(12, kNoPayload);
  best[0] = 10;
  best[4] = 77;  // within the 5-hop budget
  util::Rng rng(2);
  // Full window = 3 passes x 5 rounds.
  for (int i = 0; i < 15; ++i) eng.step(best, rng);
  EXPECT_EQ(best[0], 77u);
  // ... and redistributed by pass 3.
  for (graph::NodeId v = 0; v <= 5; ++v) EXPECT_EQ(best[v], 77u) << v;
}

TEST(PropagationEngine, CurtailLimitsReach) {
  PathFixture fx(20);
  PropagationEngine eng(fx.config(4, false));
  std::vector<Payload> best(20, kNoPayload);
  best[10] = 99;  // deeper than the curtail: cannot reach the centre
  util::Rng rng(3);
  for (int i = 0; i < 12; ++i) eng.step(best, rng);  // one full window
  EXPECT_EQ(best[0], kNoPayload);
}

TEST(PropagationEngine, StepCountsRoundsForBothStreams) {
  PathFixture fx(8);
  PropagationEngine with_bg(fx.config(3, true));
  PropagationEngine without(fx.config(3, false));
  std::vector<Payload> a(8, kNoPayload), b(8, kNoPayload);
  util::Rng rng(4);
  EXPECT_EQ(with_bg.step(a, rng), 2u);
  EXPECT_EQ(without.step(b, rng), 1u);
  EXPECT_EQ(with_bg.stats().background_rounds, 1u);
  EXPECT_EQ(without.stats().background_rounds, 0u);
}

TEST(PropagationEngine, WindowsAdvanceAndRestart) {
  PathFixture fx(8);
  PropagationEngine eng(fx.config(2, false));
  std::vector<Payload> best(8, kNoPayload);
  best[0] = 5;
  util::Rng rng(5);
  // 3 windows of 3 passes x 2 rounds.
  for (int i = 0; i < 18; ++i) eng.step(best, rng);
  EXPECT_EQ(eng.stats().windows_started, 1u + 3u);  // initial + 3 restarts
}

TEST(PropagationEngine, RepeatedWindowsEventuallyCoverTheCurtailChain) {
  // With hop budget 3, each window pushes the frontier ~3 hops (pass 3
  // re-broadcasts the centre value, and subsequent windows restart from
  // the SAME centre, so progress relies on the inward pass pulling values
  // toward the centre — on a single path cluster the value reaches the end
  // because every node within 3 hops of the centre holds it and the next
  // window's inward pass cannot regress). This asserts monotone coverage.
  PathFixture fx(10);
  PropagationEngine eng(fx.config(3, false));
  std::vector<Payload> best(10, kNoPayload);
  best[0] = 5;
  util::Rng rng(6);
  std::size_t covered_prev = 0;
  for (int w = 0; w < 6; ++w) {
    for (int i = 0; i < 9; ++i) eng.step(best, rng);
    std::size_t covered = 0;
    for (auto b : best) covered += b != kNoPayload;
    EXPECT_GE(covered, covered_prev);
    covered_prev = covered;
  }
  // Coverage is capped by the curtail: exactly nodes 0..3.
  EXPECT_EQ(covered_prev, 4u);
}

TEST(PropagationEngine, InvalidConfigThrows) {
  PathFixture fx(4);
  PropagationEngine::Config cfg = fx.config(2, false);
  cfg.scheds.clear();
  EXPECT_THROW(PropagationEngine{cfg}, std::invalid_argument);
  PropagationEngine::Config cfg2 = fx.config(2, false);
  cfg2.choose = nullptr;
  EXPECT_THROW(PropagationEngine{cfg2}, std::invalid_argument);
}

TEST(PropagationEngine, ChoiceIndexOutOfRangeThrows) {
  PathFixture fx(4);
  PropagationEngine::Config cfg = fx.config(2, false);
  cfg.choose = [](graph::NodeId, std::uint64_t) {
    return WindowChoice{5, 2};  // no such schedule
  };
  PropagationEngine eng(cfg);
  std::vector<Payload> best(4, kNoPayload);
  util::Rng rng(7);
  EXPECT_THROW(eng.step(best, rng), std::out_of_range);
}

}  // namespace
}  // namespace radiocast::core
