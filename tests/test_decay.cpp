// Decay primitive (Algorithm 5) and Lemma 3.1: one Decay round informs a
// listener with at least one participating neighbour with constant
// probability.
#include "schedule/decay.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace radiocast::schedule {
namespace {

TEST(Decay, ProbabilityHalvesPerStep) {
  EXPECT_DOUBLE_EQ(decay_probability(1), 0.5);
  EXPECT_DOUBLE_EQ(decay_probability(2), 0.25);
  EXPECT_DOUBLE_EQ(decay_probability(10), 1.0 / 1024.0);
  EXPECT_DOUBLE_EQ(decay_probability(0), 1.0);   // defensive
  EXPECT_DOUBLE_EQ(decay_probability(80), 0.0);  // underflow guard
}

TEST(Decay, RoundLengthIsCeilLog2) {
  EXPECT_EQ(decay_round_length(1), 1u);
  EXPECT_EQ(decay_round_length(2), 1u);
  EXPECT_EQ(decay_round_length(3), 2u);
  EXPECT_EQ(decay_round_length(1024), 10u);
  EXPECT_EQ(decay_round_length(1025), 11u);
}

TEST(Decay, StepDeliversOnIsolatedEdge) {
  // Single participant, step probability 1/2: over many trials the
  // neighbour is informed about half the time.
  const graph::Graph g = graph::path(2);
  util::Rng rng(1);
  int informed = 0;
  constexpr int kTrials = 4000;
  for (int t = 0; t < kTrials; ++t) {
    radio::Network net(g);
    std::vector<std::uint8_t> part{1, 0};
    std::vector<radio::Payload> pay{99, radio::kNoPayload};
    std::vector<radio::Payload> best{99, radio::kNoPayload};
    decay_step(net, part, pay, 1, best, rng, nullptr);
    informed += best[1] == 99;
  }
  EXPECT_NEAR(informed / static_cast<double>(kTrials), 0.5, 0.03);
}

TEST(Decay, ReceivedFromIdentifiesSender) {
  const graph::Graph g = graph::path(3);
  util::Rng rng(2);
  radio::Network net(g);
  std::vector<std::uint8_t> part{1, 0, 0};
  std::vector<radio::Payload> pay{7, radio::kNoPayload, radio::kNoPayload};
  std::vector<radio::Payload> best = pay;
  std::vector<graph::NodeId> from;
  // Step 0 => probability 1 (defensive branch) so delivery is certain.
  const auto delivered = decay_step(net, part, pay, 0, best, rng, &from);
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(from[1], 0u);
  EXPECT_EQ(from[2], graph::kInvalidNode);
}

// Lemma 3.1 sweep: success probability of a full Decay round as a function
// of the number of participating neighbours stays bounded below by a
// constant (we assert >= 0.2; the textbook constant is ~1/(2e)).
class DecayLemma31 : public ::testing::TestWithParam<int> {};

TEST_P(DecayLemma31, ConstantSuccessProbability) {
  const int neighbors = GetParam();
  const graph::Graph g = graph::star(neighbors + 1);
  util::Rng rng(100 + neighbors);
  int informed = 0;
  constexpr int kTrials = 600;
  for (int t = 0; t < kTrials; ++t) {
    radio::Network net(g);
    std::vector<std::uint8_t> part(g.node_count(), 1);
    part[0] = 0;  // centre listens
    std::vector<radio::Payload> pay(g.node_count(), 5);
    std::vector<radio::Payload> best(g.node_count(), 5);
    best[0] = radio::kNoPayload;
    decay_round(net, part, pay, best, rng);
    informed += best[0] == 5;
  }
  const double p = informed / static_cast<double>(kTrials);
  EXPECT_GE(p, 0.2) << neighbors << " participating neighbours";
}

INSTANTIATE_TEST_SUITE_P(NeighborCounts, DecayLemma31,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128));

TEST(Decay, RoundInformsAlongPathEventually) {
  // Repeated Decay rounds from an informed head must walk a path.
  const graph::Graph g = graph::path(12);
  util::Rng rng(3);
  radio::Network net(g);
  std::vector<radio::Payload> best(12, radio::kNoPayload);
  best[0] = 42;
  std::vector<std::uint8_t> part(12, 0);
  std::vector<radio::Payload> pay(12, radio::kNoPayload);
  for (int round = 0; round < 400; ++round) {
    for (graph::NodeId v = 0; v < 12; ++v) {
      part[v] = best[v] != radio::kNoPayload;
      pay[v] = best[v];
    }
    decay_round(net, part, pay, best, rng);
    if (best[11] == 42) break;
  }
  EXPECT_EQ(best[11], 42u);
}

TEST(Decay, NoParticipantsNoDeliveries) {
  const graph::Graph g = graph::clique(5);
  util::Rng rng(4);
  radio::Network net(g);
  std::vector<std::uint8_t> part(5, 0);
  std::vector<radio::Payload> pay(5, 1);
  std::vector<radio::Payload> best(5, radio::kNoPayload);
  EXPECT_EQ(decay_round(net, part, pay, best, rng), 0u);
  for (auto b : best) EXPECT_EQ(b, radio::kNoPayload);
}

TEST(Decay, BestKeepsMaximum) {
  // A node already holding a higher value must not regress.
  const graph::Graph g = graph::path(2);
  util::Rng rng(5);
  radio::Network net(g);
  std::vector<std::uint8_t> part{1, 0};
  std::vector<radio::Payload> pay{3, radio::kNoPayload};
  std::vector<radio::Payload> best{3, 10};
  for (int i = 0; i < 20; ++i) {
    decay_step(net, part, pay, 0, best, rng, nullptr);
  }
  EXPECT_EQ(best[1], 10u);
}

}  // namespace
}  // namespace radiocast::schedule
