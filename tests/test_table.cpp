#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace radiocast::util {
namespace {

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.row().add("a").add(std::uint64_t{1});
  t.row().add("long-name").add(std::uint64_t{22});
  const std::string s = t.to_string();
  // Header separator present and every row starts with '|'.
  std::istringstream is(s);
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) {
    EXPECT_EQ(line.front(), '|');
    EXPECT_EQ(line.back(), '|');
    ++lines;
  }
  EXPECT_EQ(lines, 4);  // header + separator + 2 rows
}

TEST(Table, CsvBasic) {
  Table t({"a", "b"});
  t.row().add("x").add(3.14159, 2);
  EXPECT_EQ(t.to_csv(), "a,b\nx,3.14\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"field"});
  t.row().add("has,comma");
  t.row().add("has\"quote");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, NumericFormatting) {
  Table t({"v"});
  t.row().add(1.23456, 3);
  EXPECT_EQ(t.cells()[0][0], "1.235");
  t.row().add(std::int64_t{-5});
  EXPECT_EQ(t.cells()[1][0], "-5");
  t.row().add(7);
  EXPECT_EQ(t.cells()[2][0], "7");
}

TEST(Table, AddWithoutRowStartsOne) {
  Table t({"x"});
  t.add("implicit");
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, WriteCsvRoundTrip) {
  Table t({"k", "v"});
  t.row().add("a").add(std::uint64_t{1});
  const std::string path = "/tmp/radiocast_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), t.to_csv());
  std::remove(path.c_str());
}

TEST(Table, WriteCsvBadPathFails) {
  Table t({"x"});
  EXPECT_FALSE(t.write_csv("/nonexistent-dir-xyz/file.csv"));
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.0, 3), "1.000");
  EXPECT_EQ(format_double(0.12349, 4), "0.1235");
}

}  // namespace
}  // namespace radiocast::util
