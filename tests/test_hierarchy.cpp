#include "cluster/hierarchy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace radiocast::cluster {
namespace {

TEST(Hierarchy, StructureMatchesParams) {
  util::Rng rng(1);
  const graph::Graph g = graph::path_of_cliques(40, 8);
  const auto d = graph::diameter_double_sweep(g);
  HierarchyParams params;
  const Hierarchy h(g, d, params, rng);
  EXPECT_GE(h.j_values().size(), 1u);
  EXPECT_GE(h.reps_per_j(), 1u);
  EXPECT_EQ(h.fine_count(), h.j_values().size() * h.reps_per_j());
  // j values ascending and >= 1.
  for (std::size_t i = 0; i < h.j_values().size(); ++i) {
    EXPECT_GE(h.j_values()[i], 1u);
    if (i > 0) {
      EXPECT_GT(h.j_values()[i], h.j_values()[i - 1]);
    }
  }
  EXPECT_GT(h.charged_precompute_rounds(), 0u);
}

TEST(Hierarchy, FinePartitionsRespectCoarseRegions) {
  util::Rng rng(2);
  const graph::Graph g = graph::grid(20, 20);
  const Hierarchy h(g, 38, HierarchyParams{}, rng);
  for (std::size_t ji = 0; ji < h.j_values().size(); ++ji) {
    for (std::uint32_t r = 0; r < h.reps_per_j(); ++r) {
      const Partition& fine = h.fine(ji, r);
      for (graph::NodeId v = 0; v < g.node_count(); ++v) {
        EXPECT_EQ(h.coarse().center[fine.center[v]], h.coarse().center[v]);
      }
    }
  }
}

TEST(Hierarchy, SequenceChoiceDeterministicAndValid) {
  util::Rng rng(3);
  const graph::Graph g = graph::grid(15, 15);
  const Hierarchy h(g, 28, HierarchyParams{}, rng);
  for (std::uint64_t pos = 0; pos < 50; ++pos) {
    const auto a = h.sequence_choice(0, pos);
    const auto b = h.sequence_choice(0, pos);
    EXPECT_EQ(a.j_index, b.j_index);
    EXPECT_EQ(a.rep, b.rep);
    EXPECT_LT(a.j_index, h.j_values().size());
    EXPECT_LT(a.rep, h.reps_per_j());
    EXPECT_EQ(a.j, h.j_values()[a.j_index]);
    EXPECT_NEAR(a.beta, std::ldexp(1.0, -static_cast<int>(a.j)), 1e-12);
  }
}

TEST(Hierarchy, SequenceDiffersAcrossCenters) {
  // Different coarse centres draw independent sequences (step 5).
  util::Rng rng(4);
  const graph::Graph g = graph::grid(15, 15);
  HierarchyParams params;
  params.fine_reps_exponent = 0.6;  // more reps so collisions are unlikely
  const Hierarchy h(g, 28, params, rng);
  if (h.fine_count() < 4) GTEST_SKIP() << "too few clusterings to compare";
  int same = 0, total = 0;
  for (std::uint64_t pos = 0; pos < 40; ++pos) {
    const auto a = h.sequence_choice(1, pos);
    const auto b = h.sequence_choice(2, pos);
    same += (a.j_index == b.j_index && a.rep == b.rep);
    ++total;
  }
  EXPECT_LT(same, total);
}

TEST(Hierarchy, RandomizedChoiceCoversGrid) {
  util::Rng rng(5);
  const graph::Graph g = graph::grid(15, 15);
  HierarchyParams params;
  params.fine_reps_exponent = 0.45;
  const Hierarchy h(g, 28, params, rng);
  std::map<std::pair<std::size_t, std::uint32_t>, int> counts;
  for (std::uint64_t pos = 0; pos < 64 * h.fine_count(); ++pos) {
    const auto c = h.sequence_choice(7, pos);
    ++counts[{c.j_index, c.rep}];
  }
  EXPECT_EQ(counts.size(), h.fine_count());  // uniform choice hits all
}

TEST(Hierarchy, FixedBetaModeIsRoundRobinAtMaxJ) {
  util::Rng rng(6);
  const graph::Graph g = graph::grid(15, 15);
  Hierarchy h(g, 28, HierarchyParams{}, rng);
  h.set_randomize(false);
  const std::size_t j_max_index = h.j_values().size() - 1;
  for (std::uint64_t pos = 0; pos < 20; ++pos) {
    const auto c = h.sequence_choice(3, pos);
    EXPECT_EQ(c.j_index, j_max_index);
    EXPECT_EQ(c.rep, pos % h.reps_per_j());
  }
}

TEST(Hierarchy, MemoryCapTrimsReps) {
  util::Rng rng(7);
  const graph::Graph g = graph::grid(10, 10);
  HierarchyParams params;
  params.fine_reps_exponent = 2.0;  // absurd: D^2 reps
  params.max_total_fine = 8;
  const Hierarchy h(g, 18, params, rng);
  EXPECT_LE(h.fine_count(), 8u + h.j_values().size());  // reps floor is 1
}

TEST(Hierarchy, CoarseBetaExponentRespected) {
  util::Rng rng(8);
  const graph::Graph g = graph::grid(20, 20);
  HierarchyParams params;
  params.coarse_beta_exponent = -0.5;
  const Hierarchy h(g, 38, params, rng);
  EXPECT_NEAR(h.coarse().beta, std::pow(38.0, -0.5), 1e-9);
}

}  // namespace
}  // namespace radiocast::cluster
