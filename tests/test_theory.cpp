// Sanity of the closed-form reference curves (monotonicity, asymptotic
// ordering — who is supposed to win where).
#include "core/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace radiocast::core::theory {
namespace {

TEST(Theory, CdBeatsBgiForLargeD) {
  // D polynomial in n: CD is O(D), BGI is O(D log n).
  const std::uint64_t n = 1ull << 24;
  const std::uint64_t d = 1ull << 20;
  EXPECT_LT(bound_cd(n, d), bound_bgi(n, d));
}

TEST(Theory, CdBeatsHwEverywhereLargeD) {
  const std::uint64_t n = 1ull << 24;
  for (std::uint64_t d : {1ull << 12, 1ull << 16, 1ull << 20}) {
    EXPECT_LT(bound_cd(n, d), bound_hw(n, d)) << d;
  }
}

TEST(Theory, HwBeatsCrkpForLargeD) {
  // The paper: HW was the first to beat the no-spontaneous lower bound.
  // The win needs D very close to polynomial in n (log n log log n / log D
  // < log(n/D)), so pick n = 2^40, D = 2^30.
  const std::uint64_t n = 1ull << 40;
  const std::uint64_t d = 1ull << 30;
  EXPECT_LT(bound_hw(n, d), bound_crkp(n, d));
}

TEST(Theory, CrkpBelowBgi) {
  for (std::uint64_t d : {1ull << 8, 1ull << 12, 1ull << 16}) {
    EXPECT_LE(bound_crkp(1ull << 20, d), bound_bgi(1ull << 20, d) * 1.01);
  }
}

TEST(Theory, CdIsLinearInDWhenNPolyD) {
  // n = D^2: bound_cd / D -> 2 + o(1).
  const std::uint64_t d = 1ull << 16;
  const std::uint64_t n = d * d;
  const double per_hop = (bound_cd(n, d) - 0) / static_cast<double>(d);
  EXPECT_LT(per_hop, 3.0);
  EXPECT_GT(per_hop, 1.5);
}

TEST(Theory, CompeteSourceTermScales) {
  const std::uint64_t n = 1 << 20, d = 1 << 12;
  const double base = bound_compete(n, d, 0);
  const double with_k = bound_compete(n, d, 1000);
  EXPECT_NEAR(with_k - base, 1000 * std::pow(double(d), 0.125), 1.0);
}

TEST(Theory, LowerBoundsBelowUpperBounds) {
  for (std::uint64_t d : {1ull << 8, 1ull << 14, 1ull << 20}) {
    const std::uint64_t n = d * 4;
    EXPECT_LE(lower_bound_spontaneous(n, d), bound_cd(n, d) * 1.01);
    EXPECT_LE(lower_bound_no_spontaneous(n, d), bound_bgi(n, d) * 1.5);
  }
}

TEST(Theory, LeaderElectionOrdering) {
  // CD LE == CD broadcast < GH LE < binary-search LE (large D regime).
  const std::uint64_t n = 1ull << 26;
  const std::uint64_t d = 1ull << 20;
  EXPECT_LT(bound_cd(n, d), bound_gh_le(n, d));
  EXPECT_LT(bound_gh_le(n, d), bound_binary_search_le(n, d));
}

TEST(Theory, ClusterDistanceBoundShrinksWithBeta) {
  const std::uint64_t n = 1 << 20, d = 1 << 12;
  EXPECT_GT(bound_cluster_distance(n, d, 0.1),
            bound_cluster_distance(n, d, 0.5));
}

TEST(Theory, StrongDiameterBound) {
  EXPECT_NEAR(bound_strong_diameter(1 << 20, 0.5), 40.0, 1e-9);
}

TEST(Theory, SubpathBounds) {
  const std::uint64_t d = 1ull << 20;
  EXPECT_NEAR(bound_bad_subpaths(d), std::pow(double(d), 0.63), 1.0);
  EXPECT_NEAR(bound_subpath_badness(d), std::pow(double(d), -0.26), 1e-9);
  EXPECT_LT(bound_subpath_badness(d), 1.0);
}

TEST(Theory, MonotoneInD) {
  const std::uint64_t n = 1ull << 22;
  double prev = 0;
  for (std::uint64_t d = 1 << 8; d <= (1ull << 20); d <<= 2) {
    const double b = bound_cd(n, d);
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(Theory, TinyInputsDoNotBlowUp) {
  // Clamped logs: no NaN/inf/zero-division on degenerate inputs.
  for (std::uint64_t n : {1ull, 2ull, 3ull}) {
    for (std::uint64_t d : {1ull, 2ull}) {
      EXPECT_TRUE(std::isfinite(bound_cd(n, d)));
      EXPECT_TRUE(std::isfinite(bound_hw(n, d)));
      EXPECT_TRUE(std::isfinite(bound_bgi(n, d)));
      EXPECT_TRUE(std::isfinite(bound_crkp(n, d)));
      EXPECT_TRUE(std::isfinite(bound_gh_le(n, d)));
      EXPECT_GT(bound_cd(n, d), 0.0);
    }
  }
}

}  // namespace
}  // namespace radiocast::core::theory
