// util::parse — the strict numeric parsing behind every configuration
// knob — and the RADIOCAST_SHARD_THREADS hardening: a set-but-invalid
// environment override must throw, never silently fall back to a default
// worker count.
#include "util/parse.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "graph/generators.hpp"
#include "radio/medium.hpp"

namespace radiocast {
namespace {

TEST(Parse, PositiveIntAcceptsPlainIntegers) {
  EXPECT_EQ(util::parse_positive_int("1", "t"), 1);
  EXPECT_EQ(util::parse_positive_int("64", "t"), 64);
  EXPECT_EQ(util::parse_positive_int("2147483647", "t"), 2147483647);
}

TEST(Parse, PositiveIntRejectsJunkZeroAndTrailing) {
  for (const char* bad : {"", "0", "-3", "8x", "x8", "3.5", " 4", "4 ",
                          "99999999999999999999"}) {
    EXPECT_THROW(util::parse_positive_int(bad, "t"), std::invalid_argument)
        << "input: '" << bad << "'";
  }
  try {
    util::parse_positive_int("banana", "RADIOCAST_SHARD_THREADS");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("RADIOCAST_SHARD_THREADS"), std::string::npos);
    EXPECT_NE(msg.find("banana"), std::string::npos);
  }
}

TEST(Parse, Uint) {
  EXPECT_EQ(util::parse_uint("0", "t"), 0u);
  EXPECT_EQ(util::parse_uint("18446744073709551615", "t"),
            18446744073709551615ull);
  EXPECT_THROW(util::parse_uint("-1", "t"), std::invalid_argument);
  EXPECT_THROW(util::parse_uint("1e3", "t"), std::invalid_argument);
}

TEST(Parse, Double) {
  EXPECT_DOUBLE_EQ(util::parse_double("0.125", "t"), 0.125);
  EXPECT_DOUBLE_EQ(util::parse_double("1e-3", "t"), 1e-3);
  EXPECT_DOUBLE_EQ(util::parse_double("-2", "t"), -2.0);
  for (const char* bad : {"", "x", "1.2.3", "1.0x", "nan", "inf"}) {
    EXPECT_THROW(util::parse_double(bad, "t"), std::invalid_argument)
        << "input: '" << bad << "'";
  }
}

// The satellite hardening: a sharded medium constructed with threads == 0
// consults RADIOCAST_SHARD_THREADS; invalid values must throw (previously
// std::atoi silently fell back to the hardware default).
TEST(Parse, ShardThreadsEnvRejectsInvalidValues) {
  const graph::Graph g = graph::path(16);
  for (const char* bad : {"banana", "0", "-2", "4x"}) {
    ::setenv("RADIOCAST_SHARD_THREADS", bad, 1);
    EXPECT_THROW(radio::make_medium(radio::MediumKind::kSharded, g,
                                    radio::CollisionModel::kNoDetection),
                 std::invalid_argument)
        << "env value: '" << bad << "'";
  }
  ::setenv("RADIOCAST_SHARD_THREADS", "2", 1);
  EXPECT_NO_THROW(radio::make_medium(radio::MediumKind::kSharded, g,
                                     radio::CollisionModel::kNoDetection));
  ::unsetenv("RADIOCAST_SHARD_THREADS");
}

}  // namespace
}  // namespace radiocast
