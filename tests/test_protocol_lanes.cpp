// Lane-parallel protocol execution differentials: a protocol written
// against radio::LaneExecutor must produce, lane by lane, byte-identical
// results whether it runs one seed at a time over a scalar Network or N
// seeds at once over a BatchNetwork — success, rounds, informed counts,
// counters, and the whole best[] knowledge planes.
#include "core/compete_batched.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "radio/batch_network.hpp"
#include "radio/network.hpp"
#include "schedule/decay.hpp"
#include "util/rng.hpp"

namespace radiocast {
namespace {

using core::BatchedCompeteParams;
using core::CompeteLaneResult;
using core::CompeteSource;
using graph::Graph;
using graph::NodeId;

std::vector<std::uint64_t> make_seeds(int count, std::uint64_t base) {
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    seeds[static_cast<std::size_t>(i)] =
        util::mix_seed(base, static_cast<std::uint64_t>(i));
  }
  return seeds;
}

/// The scalar reference: one independent Network-backed run per seed, all
/// through the very same lane-generic protocol code (lanes() == 1).
std::vector<CompeteLaneResult> scalar_reference(
    const Graph& g, const std::vector<CompeteSource>& sources,
    const BatchedCompeteParams& params,
    const std::vector<std::uint64_t>& seeds) {
  std::vector<CompeteLaneResult> out;
  for (const std::uint64_t seed : seeds) {
    radio::Network net(g);  // scalar medium, 1 lane
    const std::uint64_t one[] = {seed};
    out.push_back(core::compete_batched(net, sources, params, one).front());
  }
  return out;
}

void expect_lane_equal(const CompeteLaneResult& got,
                       const CompeteLaneResult& want, int lane) {
  EXPECT_EQ(got.success, want.success) << "lane " << lane;
  EXPECT_EQ(got.rounds, want.rounds) << "lane " << lane;
  EXPECT_EQ(got.informed, want.informed) << "lane " << lane;
  EXPECT_EQ(got.winner, want.winner) << "lane " << lane;
  EXPECT_EQ(got.transmissions, want.transmissions) << "lane " << lane;
  EXPECT_EQ(got.deliveries, want.deliveries) << "lane " << lane;
  EXPECT_EQ(got.best, want.best) << "lane " << lane;
}

void check_compete_differential(const Graph& g,
                                const std::vector<CompeteSource>& sources,
                                const BatchedCompeteParams& params, int lanes,
                                std::uint64_t base_seed) {
  const auto seeds = make_seeds(lanes, base_seed);
  const auto want = scalar_reference(g, sources, params, seeds);
  for (const radio::MediumKind medium :
       {radio::MediumKind::kBitslice, radio::MediumKind::kScalar,
        radio::MediumKind::kSharded}) {
    // The sender-recovery strategy must be invisible in results: every
    // strategy on every backend reproduces the scalar per-seed reference
    // byte for byte (success, rounds, counters, whole best[] planes).
    for (const radio::RecoveryStrategy recovery :
         {radio::RecoveryStrategy::kAuto, radio::RecoveryStrategy::kRowScan,
          radio::RecoveryStrategy::kIdPlanes}) {
      const auto got =
          core::compete_batched(g, sources, params, seeds, medium, recovery);
      ASSERT_EQ(got.size(), want.size())
          << to_string(medium) << "/" << to_string(recovery);
      for (int l = 0; l < lanes; ++l) {
        expect_lane_equal(got[static_cast<std::size_t>(l)],
                          want[static_cast<std::size_t>(l)], l);
      }
    }
  }
}

TEST(ProtocolLanes, BroadcastBatchedMatchesScalarRunsLaneByLane) {
  util::Rng grng(41);
  const Graph g = graph::gnp(160, 0.06, grng);
  BatchedCompeteParams params;
  params.max_rounds = 4000;
  check_compete_differential(g, {{0, 77}}, params, 64, 1001);
  check_compete_differential(g, {{3, 5}}, params, 9, 1002);
}

TEST(ProtocolLanes, CompeteBatchedMultiSourceMatchesScalarRuns) {
  util::Rng grng(42);
  const Graph g = graph::gnp(120, 0.07, grng);
  BatchedCompeteParams params;
  params.max_rounds = 3000;
  params.check_interval = 5;  // off-cycle cadence must still agree
  const std::vector<CompeteSource> sources{{2, 900}, {40, 901}, {77, 950}};
  check_compete_differential(g, sources, params, 23, 2001);
}

TEST(ProtocolLanes, TightBudgetLanesAgreeOnFailureToo) {
  // A budget far below completion: lanes must agree on rounds == cap,
  // partial best planes, and success == false, exactly as scalar runs do.
  util::Rng grng(43);
  const Graph g = graph::path_of_cliques(12, 6);
  BatchedCompeteParams params;
  params.max_rounds = 10;
  check_compete_differential(g, {{0, 9}}, params, 17, 3001);
}

TEST(ProtocolLanes, BroadcastBatchedConvenienceBroadcasts) {
  util::Rng grng(44);
  const Graph g = graph::gnp(90, 0.1, grng);
  BatchedCompeteParams params;
  params.max_rounds = 4000;
  const auto seeds = make_seeds(8, 4001);
  const auto lanes = core::broadcast_batched(g, 5, 1234, params, seeds);
  ASSERT_EQ(lanes.size(), 8u);
  for (const auto& lane : lanes) {
    EXPECT_EQ(lane.winner, 1234u);
    if (lane.success) {
      EXPECT_EQ(lane.informed, g.node_count());
      for (const auto b : lane.best) EXPECT_EQ(b, 1234u);
    }
  }
}

TEST(ProtocolLanes, EmptySourcesVacuousSuccess) {
  const Graph g = graph::star(7);
  const auto seeds = make_seeds(4, 5001);
  const auto lanes =
      core::compete_batched(g, {}, BatchedCompeteParams{}, seeds);
  for (const auto& lane : lanes) {
    EXPECT_TRUE(lane.success);
    EXPECT_EQ(lane.rounds, 0u);
    EXPECT_EQ(lane.informed, 0u);
  }
}

// The lane-generic Decay primitive itself: per-lane participation masks,
// per-lane payload planes, per-lane RNG streams — batched over bitslice vs
// one scalar Network run per lane.
TEST(ProtocolLanes, DecayRoundLanesMatchesPerLaneScalarRuns) {
  util::Rng grng(45);
  const Graph g = graph::gnp(140, 0.08, grng);
  const NodeId n = g.node_count();
  const int lanes = 64;
  const auto seeds = make_seeds(lanes, 6001);

  // Random per-lane participation and per-lane payload planes.
  std::vector<std::uint64_t> participates(n, 0);
  std::vector<radio::Payload> payload(static_cast<std::size_t>(lanes) * n);
  util::Rng setup(46);
  for (NodeId v = 0; v < n; ++v) {
    for (int l = 0; l < lanes; ++l) {
      if (setup.bernoulli(0.35)) {
        participates[v] |= std::uint64_t{1} << l;
      }
      payload[static_cast<std::size_t>(l) * n + v] =
          1000 * static_cast<radio::Payload>(l + 1) + v;
    }
  }

  // Batched: all lanes through one BatchNetwork.
  std::vector<radio::Payload> best_batch(static_cast<std::size_t>(lanes) * n,
                                         radio::kNoPayload);
  std::vector<util::Rng> rngs;
  for (const auto s : seeds) rngs.emplace_back(s);
  radio::BatchNetwork bn(g, lanes);
  radio::BatchOutcome out;
  std::uint32_t batch_delivered = 0;
  for (int round = 0; round < 3; ++round) {
    batch_delivered += schedule::decay_round_lanes(
        bn, participates, radio::PayloadPlanes::lane_major(payload, n),
        radio::KnowledgePlanes::lane_major(best_batch, n), rngs, out);
  }

  // Reference: one scalar Network run per lane with the same seed.
  std::uint32_t scalar_delivered = 0;
  for (int l = 0; l < lanes; ++l) {
    std::vector<std::uint64_t> part1(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      part1[v] = participates[v] >> l & 1;
    }
    const auto plane_begin =
        payload.begin() + static_cast<std::ptrdiff_t>(l) * n;
    const std::vector<radio::Payload> plane(plane_begin, plane_begin + n);
    std::vector<radio::Payload> best1(n, radio::kNoPayload);
    util::Rng rng(seeds[static_cast<std::size_t>(l)]);
    radio::Network net(g);
    radio::BatchOutcome out1;
    for (int round = 0; round < 3; ++round) {
      scalar_delivered += schedule::decay_round_lanes(
          net, part1, plane, best1, std::span<util::Rng>(&rng, 1), out1);
    }
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_EQ(best_batch[static_cast<std::size_t>(l) * n + v], best1[v])
          << "lane " << l << " node " << v;
    }
  }
  EXPECT_EQ(batch_delivered, scalar_delivered);
}

// The single-lane wrapper must behave exactly like a hand-driven 1-lane
// call (same draws, same best updates, same received_from bookkeeping).
TEST(ProtocolLanes, ScalarDecayStepMatchesOneLaneCall) {
  util::Rng grng(47);
  const Graph g = graph::gnp(80, 0.1, grng);
  const NodeId n = g.node_count();
  std::vector<std::uint8_t> part(n, 0);
  std::vector<radio::Payload> pay(n, radio::kNoPayload);
  util::Rng setup(48);
  for (NodeId v = 0; v < n; ++v) {
    part[v] = setup.bernoulli(0.5);
    pay[v] = 100 + v;
  }

  radio::Network net_a(g);
  std::vector<radio::Payload> best_a(n, radio::kNoPayload);
  util::Rng rng_a(99);
  std::vector<NodeId> from;
  std::uint32_t del_a = 0;
  for (std::uint32_t s = 1; s <= 3; ++s) {
    del_a += schedule::decay_step(net_a, part, pay, s, best_a, rng_a, &from);
  }

  radio::Network net_b(g);
  std::vector<std::uint64_t> mask(n, 0);
  for (NodeId v = 0; v < n; ++v) mask[v] = part[v] ? 1 : 0;
  std::vector<radio::Payload> best_b(n, radio::kNoPayload);
  util::Rng rng_b(99);
  radio::BatchOutcome out;
  std::uint32_t del_b = 0;
  for (std::uint32_t s = 1; s <= 3; ++s) {
    del_b += schedule::decay_step_lanes(net_b, mask, pay, s, best_b,
                                        std::span<util::Rng>(&rng_b, 1), out);
  }
  EXPECT_EQ(del_a, del_b);
  EXPECT_EQ(best_a, best_b);
}

// Sender-materializing Decay (with_senders=true) through BatchNetwork
// under both pinned recovery strategies and both collision models: the
// out.deliveries detail driving best[] must agree lane by lane with a
// per-seed scalar run, for 1, 7, and 64 lanes.
TEST(ProtocolLanes, DecayWithSendersAgreesAcrossRecoveryStrategies) {
  util::Rng grng(49);
  const Graph g = graph::gnp(130, 0.09, grng);
  const NodeId n = g.node_count();
  for (const radio::CollisionModel model :
       {radio::CollisionModel::kNoDetection,
        radio::CollisionModel::kDetection}) {
    for (const int lanes : {1, 7, 64}) {
      const auto seeds = make_seeds(lanes, 7001);
      std::vector<std::uint64_t> participates(n, radio::lane_mask(lanes));
      std::vector<radio::Payload> payload(
          static_cast<std::size_t>(lanes) * n);
      for (NodeId v = 0; v < n; ++v) {
        for (int l = 0; l < lanes; ++l) {
          payload[static_cast<std::size_t>(l) * n + v] =
              500 * static_cast<radio::Payload>(l + 1) + v;
        }
      }
      std::vector<std::vector<radio::Payload>> bests;
      std::vector<std::uint32_t> delivered;
      for (const radio::RecoveryStrategy recovery :
           {radio::RecoveryStrategy::kRowScan,
            radio::RecoveryStrategy::kIdPlanes}) {
        radio::BatchNetwork bn(g, lanes, model, radio::MediumKind::kBitslice,
                               recovery);
        std::vector<radio::Payload> best(
            static_cast<std::size_t>(lanes) * n, radio::kNoPayload);
        std::vector<util::Rng> rngs;
        for (const auto s : seeds) rngs.emplace_back(s);
        radio::BatchOutcome out;
        std::uint32_t total = 0;
        for (std::uint32_t s = 1; s <= 4; ++s) {
          total += schedule::decay_step_lanes(
              bn, participates, radio::PayloadPlanes::lane_major(payload, n),
              s, radio::KnowledgePlanes::lane_major(best, n), rngs, out,
              /*with_senders=*/true);
        }
        bests.push_back(std::move(best));
        delivered.push_back(total);
      }
      EXPECT_EQ(bests[0], bests[1])
          << "lanes=" << lanes << " model=" << static_cast<int>(model);
      EXPECT_EQ(delivered[0], delivered[1]);
    }
  }
}

TEST(ProtocolLanes, RejectsLaneOverflowAndBadPlanes) {
  const Graph g = graph::star(5);
  radio::Network net(g);
  const auto seeds = make_seeds(2, 1);
  EXPECT_THROW(
      core::compete_batched(net, {{0, 1}}, BatchedCompeteParams{}, seeds),
      std::invalid_argument);  // 2 seeds into a 1-lane executor

  radio::BatchNetwork bn(g, 8);
  std::vector<std::uint64_t> participates(g.node_count(), 0xFF);
  std::vector<radio::Payload> small_planes(g.node_count() * 4, 0);  // 4 lanes
  std::vector<radio::Payload> best(g.node_count() * 8, radio::kNoPayload);
  std::vector<util::Rng> rngs(8, util::Rng(1));
  radio::BatchOutcome out;
  EXPECT_THROW(
      schedule::decay_step_lanes(
          bn, participates,
          radio::PayloadPlanes::lane_major(small_planes, g.node_count()), 1,
          radio::KnowledgePlanes::lane_major(best, g.node_count()), rngs, out),
      std::invalid_argument);  // payload planes cover fewer lanes than rngs
}

}  // namespace
}  // namespace radiocast
