// The exp subsystem's contracts:
//   * Accumulator — Welford mean/stddev agree with a naive two-pass over a
//     fixed sample; quantiles, Wilson intervals, theory overlay.
//   * SweepSpec — axis expression parsing, manifest round trip
//     (parse -> expand -> job count), bad-grid error paths.
//   * Planner — grid expansion shape, and THE sweep determinism promise:
//     the same spec produces byte-identical CSV and JSON for any Runner
//     thread count, and identical protocol outcomes across medium /
//     recovery execution axes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exp/accumulator.hpp"
#include "exp/planner.hpp"
#include "exp/report.hpp"
#include "exp/spec.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace radiocast::exp {
namespace {

// -------------------------------------------------------------- accumulator

TEST(Accumulator, WelfordMatchesNaiveTwoPass) {
  const std::vector<double> sample{3, 5, 7, 11, 13, 17, 19, 23, 104, 0.5};
  Accumulator acc;
  for (const double x : sample) acc.add(true, x);

  // Naive two-pass reference.
  double sum = 0.0;
  for (const double x : sample) sum += x;
  const double mean = sum / static_cast<double>(sample.size());
  double ss = 0.0;
  for (const double x : sample) ss += (x - mean) * (x - mean);
  const double stddev = std::sqrt(ss / static_cast<double>(sample.size() - 1));

  EXPECT_EQ(acc.rounds().count(), sample.size());
  EXPECT_NEAR(acc.rounds().mean(), mean, 1e-12);
  EXPECT_NEAR(acc.rounds().stddev(), stddev, 1e-12);
  EXPECT_DOUBLE_EQ(acc.rounds().min(), 0.5);
  EXPECT_DOUBLE_EQ(acc.rounds().max(), 104.0);
}

TEST(Accumulator, QuantilesAndSuccessCounting) {
  Accumulator acc;
  for (int i = 1; i <= 100; ++i) acc.add(true, static_cast<double>(i));
  acc.add(false, 9999.0);  // failure: counts as a trial, rounds ignored
  acc.add(false, 9999.0);
  EXPECT_EQ(acc.trials(), 102u);
  EXPECT_EQ(acc.successes(), 100u);
  EXPECT_NEAR(acc.success_rate(), 100.0 / 102.0, 1e-12);
  EXPECT_NEAR(acc.rounds_median(), 50.5, 1e-9);
  EXPECT_NEAR(acc.rounds_p95(), 95.05, 0.2);
  EXPECT_DOUBLE_EQ(acc.rounds().max(), 100.0);  // failures never leak in

  const util::WilsonInterval w = acc.wilson();
  EXPECT_LE(w.lo, acc.success_rate());
  EXPECT_GE(w.hi, acc.success_rate());
  EXPECT_GT(w.lo, 0.9);
  EXPECT_LT(w.hi, 1.0);
}

TEST(Accumulator, TheoryOverlayAndAbsentMetrics) {
  Accumulator acc;
  acc.add(true, 50.0, /*deliveries=*/100.0);
  acc.add(true, 150.0, Accumulator::kAbsent);  // NaN metric skipped
  acc.set_theory_bound(200.0);
  EXPECT_DOUBLE_EQ(acc.rounds_over_bound(), 0.5);
  EXPECT_EQ(acc.deliveries().count(), 1u);
  Accumulator empty;
  empty.set_theory_bound(200.0);
  EXPECT_DOUBLE_EQ(empty.rounds_over_bound(), 0.0);
  EXPECT_DOUBLE_EQ(empty.success_rate(), 0.0);
}

// --------------------------------------------------------------------- axes

TEST(SweepSpec, AxisExpressions) {
  const auto list = parse_double_axis("0.5,1,2", "t");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list[1], 1.0);

  const auto lin = parse_double_axis("lin:10..30:3", "t");
  ASSERT_EQ(lin.size(), 3u);
  EXPECT_DOUBLE_EQ(lin[0], 10.0);
  EXPECT_DOUBLE_EQ(lin[1], 20.0);
  EXPECT_DOUBLE_EQ(lin[2], 30.0);

  const auto geom = parse_double_axis("geom:0.001..0.1:3", "t");
  ASSERT_EQ(geom.size(), 3u);
  EXPECT_NEAR(geom[0], 0.001, 1e-12);
  EXPECT_NEAR(geom[1], 0.01, 1e-9);
  EXPECT_NEAR(geom[2], 0.1, 1e-12);

  const auto single = parse_double_axis("geom:7..9:1", "t");
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0], 7.0);

  // Integer axis rounds and drops consecutive duplicates.
  const auto ints = parse_int_axis("geom:10..20:8", "t");
  ASSERT_GE(ints.size(), 2u);
  EXPECT_EQ(ints.front(), 10u);
  EXPECT_EQ(ints.back(), 20u);
  for (std::size_t i = 1; i < ints.size(); ++i) {
    EXPECT_GT(ints[i], ints[i - 1]);
  }
}

TEST(SweepSpec, AxisErrorPaths) {
  EXPECT_THROW(parse_double_axis("", "t"), std::invalid_argument);
  EXPECT_THROW(parse_double_axis("1,,2", "t"), std::invalid_argument);
  EXPECT_THROW(parse_double_axis("1,x", "t"), std::invalid_argument);
  EXPECT_THROW(parse_double_axis("lin:5..1:3", "t"), std::invalid_argument);
  EXPECT_THROW(parse_double_axis("lin:1..5:0", "t"), std::invalid_argument);
  EXPECT_THROW(parse_double_axis("geom:0..1:3", "t"), std::invalid_argument);
  EXPECT_THROW(parse_double_axis("lin:1..5", "t"), std::invalid_argument);
  EXPECT_THROW(parse_int_axis("-4", "t"), std::invalid_argument);
}

TEST(SweepSpec, ValidateRejectsBadGrids) {
  {
    SweepSpec s;
    s.families = {"quantum"};
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    SweepSpec s;
    s.protocols = {"teleport"};
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    SweepSpec s;
    s.n.clear();
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    SweepSpec s;
    s.p = {1.5};
    s.p_is_degree = false;  // probability > 1
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    SweepSpec s;
    s.lanes = 0;
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    SweepSpec s;
    s.lanes = radio::kMaxLanes + 1;
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    SweepSpec s;
    s.reps = 0;
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    SweepSpec s;
    s.families = {"cliquepath"};
    s.d = {2};  // diameter target below the family's minimum
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
}

// ---------------------------------------------------------------- manifests

SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.families = {"gnp", "grid"};
  spec.n = {96, 128};
  spec.p = {8.0};
  spec.p_is_degree = true;
  spec.protocols = {"decay"};
  spec.mediums = {radio::MediumKind::kScalar, radio::MediumKind::kBitslice};
  spec.recoveries = {radio::RecoveryStrategy::kAuto};
  spec.lanes = 16;
  spec.reps = 8;
  spec.seed = 5;
  return spec;
}

TEST(SweepSpec, ManifestRoundTrip) {
  const SweepSpec spec = tiny_spec();
  const auto jobs = expand(spec);
  // 2 families x 1 param x 2 n x 1 protocol x 2 mediums x 1 recovery.
  ASSERT_EQ(jobs.size(), 8u);

  // to_json -> dump -> parse -> from_json -> expand: identical grid.
  const SweepSpec back =
      SweepSpec::from_json(util::Json::parse(spec.to_json().dump(2)));
  const auto jobs_back = expand(back);
  ASSERT_EQ(jobs_back.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs_back[i].label(), jobs[i].label());
    EXPECT_EQ(jobs_back[i].seed, jobs[i].seed);
  }
}

TEST(SweepSpec, ManifestRoundTripsFullUint64Seeds) {
  // Seeds and round budgets are uint64; JSON numbers only hold 2^53. The
  // echo switches to strings above that, and the parser takes both forms.
  SweepSpec spec = tiny_spec();
  spec.seed = 18446744073709551615ull;
  spec.max_rounds = (1ull << 60) + 7;
  const SweepSpec back =
      SweepSpec::from_json(util::Json::parse(spec.to_json().dump(2)));
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.max_rounds, spec.max_rounds);
  // Numeric forms still work for human-written manifests...
  EXPECT_EQ(SweepSpec::from_json(util::Json::parse(R"({"seed": 17})")).seed,
            17u);
  // ...but a number that silently lost precision is rejected.
  EXPECT_THROW(SweepSpec::from_json(util::Json::parse(R"({"seed": 1e19})")),
               std::invalid_argument);
  EXPECT_THROW(SweepSpec::from_json(util::Json::parse(R"({"seed": -1})")),
               std::invalid_argument);
  EXPECT_THROW(SweepSpec::from_json(util::Json::parse(R"({"seed": 1.5})")),
               std::invalid_argument);
}

TEST(SweepSpec, PointSeedsAreGridShapeIndependent) {
  // A grid point's randomness depends on its coordinates, not on what
  // else is in the grid: adding a family or an n value must not move any
  // existing point's seeds.
  SweepSpec narrow = tiny_spec();
  narrow.families = {"gnp"};
  narrow.n = {96};
  SweepSpec wide = tiny_spec();
  wide.families = {"grid", "gnp"};
  wide.n = {64, 96, 128};
  const auto narrow_jobs = expand(narrow);
  const auto wide_jobs = expand(wide);
  ASSERT_FALSE(narrow_jobs.empty());
  bool found = false;
  for (const Job& job : wide_jobs) {
    if (job.family == "gnp" && job.n == 96 &&
        job.medium == narrow_jobs[0].medium) {
      EXPECT_EQ(job.seed, narrow_jobs[0].seed);
      EXPECT_EQ(job.instance_seed, narrow_jobs[0].instance_seed);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SweepSpec, ManifestFileAndErrorPaths) {
  const std::string path =
      ::testing::TempDir() + "radiocast_manifest_test.json";
  {
    std::ofstream f(path);
    f << R"({"version": 1, "family": ["cliquepath"], "n": "geom:100..400:3",
             "d": [12], "protocol": ["decay"], "medium": ["scalar"],
             "reps": 4, "lanes": 8, "seed": 9})";
  }
  const SweepSpec spec = SweepSpec::from_manifest_file(path);
  EXPECT_EQ(spec.families, std::vector<std::string>{"cliquepath"});
  ASSERT_EQ(spec.n.size(), 3u);
  EXPECT_EQ(spec.n.front(), 100u);
  EXPECT_EQ(spec.n.back(), 400u);
  EXPECT_EQ(spec.reps, 4);
  EXPECT_EQ(expand(spec).size(), 3u);
  std::remove(path.c_str());

  EXPECT_THROW(SweepSpec::from_manifest_file("/nonexistent/manifest.json"),
               std::invalid_argument);
  EXPECT_THROW(SweepSpec::from_json(util::Json::parse("[1,2]")),
               std::invalid_argument);
  // Unknown axes and unsupported versions fail loudly.
  EXPECT_THROW(
      SweepSpec::from_json(util::Json::parse(R"({"frobnicate": [1]})")),
      std::invalid_argument);
  EXPECT_THROW(SweepSpec::from_json(util::Json::parse(R"({"version": 2})")),
               std::invalid_argument);
}

// ------------------------------------------------------------- determinism

/// Renders the full deterministic output (CSV text + JSON text, timing
/// off) of the tiny grid under the given thread count.
std::pair<std::string, std::string> render_sweep(int threads) {
  const SweepSpec spec = tiny_spec();
  const auto jobs = expand(spec);
  sim::Runner runner(threads);
  const auto results = Planner().run(jobs, runner);

  util::Table table(long_headers(/*timing=*/false));
  for (const auto& point : results) {
    add_long_row(table, point_meta(point), point.acc, /*timing=*/false);
  }
  return {table.to_csv(), sweep_json(spec, results, /*timing=*/false).dump(2)};
}

TEST(Planner, ByteIdenticalAcrossThreadCounts) {
  const auto [csv1, json1] = render_sweep(1);
  ASSERT_FALSE(csv1.empty());
  for (const int threads : {2, 4}) {
    const auto [csv_n, json_n] = render_sweep(threads);
    EXPECT_EQ(csv1, csv_n) << "CSV differs at --threads=" << threads;
    EXPECT_EQ(json1, json_n) << "JSON differs at --threads=" << threads;
  }
}

TEST(Planner, ExecutionAxesDoNotChangeOutcomes) {
  // Jobs that differ only in medium (scalar vs bitslice) must fold to
  // identical protocol statistics: the execution axes isolate cost, never
  // outcome.
  const SweepSpec spec = tiny_spec();
  const auto jobs = expand(spec);
  sim::Runner runner(1);
  const auto results = Planner().run(jobs, runner);
  ASSERT_EQ(results.size(), 8u);
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const auto& a = results[i];      // scalar
    const auto& b = results[i + 1];  // bitslice, same instance point
    ASSERT_EQ(a.job.family, b.job.family);
    ASSERT_EQ(a.job.n, b.job.n);
    EXPECT_NE(a.job.medium, b.job.medium);
    EXPECT_EQ(a.acc.successes(), b.acc.successes());
    EXPECT_EQ(a.acc.rounds().mean(), b.acc.rounds().mean());
    EXPECT_EQ(a.acc.rounds().max(), b.acc.rounds().max());
    EXPECT_EQ(a.acc.deliveries().mean(), b.acc.deliveries().mean());
  }
  // And the protocol genuinely ran: every lane of the tiny grid finishes.
  for (const auto& point : results) {
    EXPECT_EQ(point.acc.trials(), 8u) << point.job.label();
    EXPECT_GT(point.acc.successes(), 0u) << point.job.label();
    EXPECT_GT(point.diameter, 0u);
    EXPECT_GT(point.acc.theory_bound(), 0.0);
  }
}

TEST(Planner, InstanceCacheDoesNotChangeReportBytes) {
  // The cache is a cost optimisation, never an outcome change: with
  // timing off, the rendered CSV and JSON are byte-identical whether
  // every lane batch rebuilt its graph or all of them shared one build.
  const SweepSpec spec = tiny_spec();
  const auto jobs = expand(spec);
  sim::Runner runner(2);
  const auto with_cache = Planner({.cache = true}).run(jobs, runner);
  const auto without = Planner({.cache = false}).run(jobs, runner);

  const auto render = [&](const std::vector<PointResult>& results) {
    util::Table table(long_headers(/*timing=*/false));
    for (const auto& point : results) {
      add_long_row(table, point_meta(point), point.acc, /*timing=*/false,
                   &point.gen);
    }
    return std::make_pair(table.to_csv(),
                          sweep_json(spec, results, /*timing=*/false).dump(2));
  };
  EXPECT_EQ(render(with_cache), render(without));
}

TEST(Planner, InstanceCacheHitCounts) {
  // tiny_spec: 8 jobs over 4 unique instances (gnp/grid x n in {96, 128};
  // the scalar/bitslice medium pairs share instance coordinates), and
  // reps=8 with lanes=16 packs each job into ONE task. So in task order:
  // 4 first-touches (misses), 4 reuses (hits).
  const SweepSpec spec = tiny_spec();
  const auto jobs = expand(spec);
  sim::Runner runner(1);
  const auto results = Planner({.cache = true}).run(jobs, runner);
  std::uint64_t hits = 0, misses = 0;
  for (const auto& point : results) {
    hits += point.gen.cache_hits;
    misses += point.gen.cache_misses;
    // Shared builds report the same generation time on every point.
    EXPECT_GT(point.gen.gen_ns, 0u) << point.job.label();
  }
  EXPECT_EQ(misses, 4u);
  EXPECT_EQ(hits, 4u);

  // Cache off: every task is its own build — all misses, no hits.
  const auto uncached = Planner({.cache = false}).run(jobs, runner);
  for (const auto& point : uncached) {
    EXPECT_EQ(point.gen.cache_hits, 0u);
    EXPECT_EQ(point.gen.cache_misses, 1u) << point.job.label();
  }

  // More batches per job -> the extra batches are hits: reps=8, lanes=2
  // gives 4 tasks per job, 32 tasks over the same 4 instances.
  SweepSpec narrow = tiny_spec();
  narrow.lanes = 2;
  const auto jobs_batched = expand(narrow);
  const auto batched = Planner({.cache = true}).run(jobs_batched, runner);
  std::uint64_t batched_hits = 0, batched_misses = 0;
  for (const auto& point : batched) {
    batched_hits += point.gen.cache_hits;
    batched_misses += point.gen.cache_misses;
  }
  EXPECT_EQ(batched_misses, 4u);
  EXPECT_EQ(batched_hits, 28u);
}

TEST(Planner, NewFamiliesExpandAndRun) {
  SweepSpec spec;
  spec.families = {"ba", "powerlaw"};
  spec.n = {96};
  spec.ba_m = {2, 3};
  spec.exponent = {2.5};
  spec.pl_deg = 8.0;
  spec.protocols = {"decay"};
  spec.mediums = {radio::MediumKind::kScalar};
  spec.recoveries = {radio::RecoveryStrategy::kAuto};
  spec.lanes = 8;
  spec.reps = 8;
  spec.seed = 5;
  const auto jobs = expand(spec);
  // ba sweeps its m axis (2 values), powerlaw its exponent axis (1).
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].param_name, "m");
  EXPECT_EQ(jobs[2].param_name, "exp");
  EXPECT_DOUBLE_EQ(jobs[2].pl_deg, 8.0);

  sim::Runner runner(1);
  const auto results = Planner().run(jobs, runner);
  for (const auto& point : results) {
    EXPECT_EQ(point.n_actual, 96u) << point.job.label();
    EXPECT_GT(point.acc.successes(), 0u) << point.job.label();
    EXPECT_GT(point.diameter, 0u) << point.job.label();
  }

  // The new axes round-trip through the manifest echo like the old ones.
  const SweepSpec back =
      SweepSpec::from_json(util::Json::parse(spec.to_json().dump(2)));
  EXPECT_EQ(back.ba_m, spec.ba_m);
  EXPECT_EQ(back.exponent, spec.exponent);
  EXPECT_DOUBLE_EQ(back.pl_deg, spec.pl_deg);
  const auto jobs_back = expand(back);
  ASSERT_EQ(jobs_back.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs_back[i].label(), jobs[i].label());
    EXPECT_EQ(jobs_back[i].instance_seed, jobs[i].instance_seed);
  }
}

TEST(SweepSpec, NewFamilyValidation) {
  {
    SweepSpec s;
    s.families = {"powerlaw"};
    s.exponent = {2.0};  // infinite mean degree
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    SweepSpec s;
    s.families = {"powerlaw"};
    s.pl_deg = 0.0;
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    SweepSpec s;
    s.families = {"ba"};
    s.ba_m.clear();
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
}

TEST(Planner, ScalarCoreCollapsesExecutionAxes) {
  SweepSpec spec = tiny_spec();
  spec.families = {"grid"};
  spec.n = {64};
  spec.protocols = {"cd", "decay"};
  spec.reps = 2;
  const auto jobs = expand(spec);
  // cd collapses 2 mediums to one scalar job; decay keeps both.
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].protocol, "cd");
  EXPECT_EQ(jobs[0].lane_width, 1);
  EXPECT_EQ(jobs[0].medium, radio::MediumKind::kScalar);
  EXPECT_EQ(jobs[1].protocol, "decay");
  EXPECT_EQ(jobs[2].protocol, "decay");
  // Same instance point -> same replication seeds across protocols.
  EXPECT_EQ(jobs[0].seed, jobs[1].seed);
  EXPECT_EQ(jobs[0].instance_seed, jobs[2].instance_seed);
}

// ------------------------------------------------------------------ report

TEST(Report, JsonCarriesSchemaVersionFirst) {
  const std::string dir = ::testing::TempDir() + "radiocast_report_test";
  std::ostringstream log;
  util::Json payload = util::Json::object();
  payload.set("kind", "probe");
  const std::string path = Report(dir).write_json("probe", payload, log);
  ASSERT_FALSE(path.empty());
  std::ifstream f(path);
  std::stringstream buffer;
  buffer << f.rdbuf();
  const util::Json back = util::Json::parse(buffer.str());
  ASSERT_GE(back.members().size(), 2u);
  EXPECT_EQ(back.members()[0].first, "version");  // stable key order
  EXPECT_DOUBLE_EQ(back.members()[0].second.as_number(), kSchemaVersion);
  EXPECT_EQ(back.find("kind")->as_string(), "probe");
  EXPECT_NE(log.str().find("[json] "), std::string::npos);
  std::remove(path.c_str());

  // Disabled sink: no file, no log line.
  std::ostringstream quiet;
  EXPECT_EQ(Report("").write_json("probe", payload, quiet), "");
  EXPECT_TRUE(quiet.str().empty());
}

// Schema v3: timed points must carry the event-driven frontier backend's
// counters AND the work-stealing pool counters (zero on other backends,
// but always present, so consumers never probe for optional keys);
// untimed points stay timing-free.
TEST(Report, TimingBlockCarriesFrontierCounters) {
  EXPECT_EQ(kSchemaVersion, 3);
  PointMeta meta;
  meta.family = "gnp";
  Accumulator acc;
  radio::PhaseTimers phases;
  phases.enqueue_ns = 7;
  phases.drain_ns = 9;
  phases.active_listeners = 11;
  phases.steal_attempts = 13;
  phases.steals = 5;
  phases.idle_ns = 17;
  acc.add_phases(phases);
  const util::Json j = point_json(meta, acc, /*timing=*/true);
  const util::Json* t = j.find("timing");
  ASSERT_NE(t, nullptr);
  EXPECT_DOUBLE_EQ(t->find("enqueue_ns")->as_number(), 7.0);
  EXPECT_DOUBLE_EQ(t->find("drain_ns")->as_number(), 9.0);
  EXPECT_DOUBLE_EQ(t->find("active_listeners")->as_number(), 11.0);
  EXPECT_DOUBLE_EQ(t->find("steal_attempts")->as_number(), 13.0);
  EXPECT_DOUBLE_EQ(t->find("steals")->as_number(), 5.0);
  EXPECT_DOUBLE_EQ(t->find("idle_ns")->as_number(), 17.0);
  EXPECT_EQ(point_json(meta, acc, /*timing=*/false).find("timing"), nullptr);
}

TEST(Report, DriverFallbackRespectsScenarioOwnedFiles) {
  const std::string dir = ::testing::TempDir() + "radiocast_ctx_json_test";
  util::Cli cli(0, nullptr);
  sim::Runner runner(1);
  std::ostringstream log;

  // A scenario that records nothing still gets its wall-time trajectory
  // file from the driver...
  sim::ScenarioContext plain(cli, runner);
  plain.out = &log;
  plain.out_dir = dir;
  const std::string path = plain.write_json("no-records", 12.5);
  ASSERT_FALSE(path.empty());
  std::ifstream f(path);
  std::stringstream buffer;
  buffer << f.rdbuf();
  const util::Json back = util::Json::parse(buffer.str());
  EXPECT_DOUBLE_EQ(back.find("wall_ms_total")->as_number(), 12.5);
  EXPECT_EQ(back.find("replications")->size(), 0u);
  std::remove(path.c_str());

  // ...but a name the scenario emitted itself is left alone.
  sim::ScenarioContext owner(cli, runner);
  owner.out = &log;
  owner.out_dir = dir;
  util::Json doc = util::Json::object();
  doc.set("kind", "sweep");
  ASSERT_FALSE(owner.emit_json("mine", std::move(doc)).empty());
  EXPECT_EQ(owner.write_json("mine", 1.0), "");
  std::ifstream owned((std::filesystem::path(dir) / "mine.json").string());
  std::stringstream kept;
  kept << owned.rdbuf();
  EXPECT_EQ(util::Json::parse(kept.str()).find("kind")->as_string(), "sweep");
}

}  // namespace
}  // namespace radiocast::exp
