#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace radiocast::graph {
namespace {

TEST(GraphBuilder, BasicTriangle) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  const Graph g = b.build();
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(GraphBuilder, DeduplicatesParallelEdges) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(GraphBuilder, IgnoresSelfLoops) {
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphBuilder, OutOfRangeThrows) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::out_of_range);
  EXPECT_THROW(b.add_edge(5, 1), std::out_of_range);
}

TEST(GraphBuilder, ReusableAfterBuild) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g1 = b.build();
  b.add_edge(1, 2);
  const Graph g2 = b.build();
  EXPECT_EQ(g1.edge_count(), 1u);
  EXPECT_EQ(g2.edge_count(), 2u);
}

TEST(Graph, NeighborsAreSorted) {
  GraphBuilder b(5);
  b.add_edge(2, 4);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(2, 1);
  const Graph g = b.build();
  const auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 4u);
  for (std::size_t i = 1; i < nb.size(); ++i) EXPECT_LT(nb[i - 1], nb[i]);
}

TEST(Graph, HasEdgeSymmetry) {
  GraphBuilder b(4);
  b.add_edge(1, 3);
  const Graph g = b.build();
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_TRUE(g.has_edge(3, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 1));
  EXPECT_FALSE(g.has_edge(1, 99));  // out of range is just "no edge"
}

TEST(Graph, EdgesListCanonical) {
  GraphBuilder b(4);
  b.add_edge(3, 1);
  b.add_edge(0, 2);
  const Graph g = b.build();
  const auto e = g.edges();
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0], std::make_pair(NodeId{0}, NodeId{2}));
  EXPECT_EQ(e[1], std::make_pair(NodeId{1}, NodeId{3}));
}

TEST(Graph, EmptyGraph) {
  GraphBuilder b(0);
  const Graph g = b.build();
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, IsolatedNodes) {
  GraphBuilder b(10);
  b.add_edge(0, 9);
  const Graph g = b.build();
  EXPECT_EQ(g.node_count(), 10u);
  EXPECT_EQ(g.degree(5), 0u);
  EXPECT_TRUE(g.neighbors(5).empty());
}

TEST(Graph, DegreeStatistics) {
  GraphBuilder b(4);  // star around 0
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  const Graph g = b.build();
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 6.0 / 4.0);
}

TEST(Graph, DegreePrefixIsTheCsrOffsetArray) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Graph g = b.build();
  const auto prefix = g.degree_prefix();
  ASSERT_EQ(prefix.size(), g.node_count() + 1u);
  EXPECT_EQ(prefix.front(), 0u);
  EXPECT_EQ(prefix.back(), 2 * g.edge_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(prefix[v + 1] - prefix[v], g.degree(v)) << v;
  }
}

TEST(Graph, EdgesReservesExactly) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.add_edge(4, 5);
  b.add_edge(1, 2);
  const Graph g = b.build();
  const auto edges = g.edges();
  EXPECT_EQ(edges.size(), g.edge_count());
  // reserve(edge_count()) means no growth-doubling over-allocation;
  // reserve may legally round up, so only bound the capacity from below.
  EXPECT_GE(edges.capacity(), g.edge_count());
}

TEST(Graph, SummaryMentionsCounts) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const std::string s = b.build().summary();
  EXPECT_NE(s.find("n=3"), std::string::npos);
  EXPECT_NE(s.find("m=1"), std::string::npos);
}

}  // namespace
}  // namespace radiocast::graph
