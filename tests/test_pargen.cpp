// graph::pargen contracts:
//   * THE determinism promise — every family produces byte-identical CSR
//     for any thread count (the chunk scheme, not the scheduler, owns the
//     randomness).
//   * The gnp skip sampler is the Bernoulli distribution it replaces:
//     edge-count statistics at moderate n, plus the literal fixed-seed
//     reference via gnp_compat.
//   * Scale-free families: BA degree/edge-count sanity, Chung-Lu average
//     degree tracks the target with a heavy tail.
//   * Structural invariants Graph::from_csr does NOT re-check (sorted
//     deduplicated rows, symmetric adjacency) hold for every family.
//   * resolve_threads: flag beats env, invalid env values throw.
#include "graph/pargen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace radiocast::graph::pargen {
namespace {

/// Byte-level CSR equality: offsets and row contents, not just counts.
void expect_identical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (NodeId v = 0; v < a.node_count(); ++v) {
    const auto ra = a.neighbors(v);
    const auto rb = b.neighbors(v);
    ASSERT_EQ(ra.size(), rb.size()) << "degree of node " << v;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      ASSERT_EQ(ra[i], rb[i]) << "row " << v << " slot " << i;
    }
  }
}

/// The invariants every generator must uphold (from_csr only checks the
/// cheap structural ones): rows sorted, deduplicated, self-loop free, and
/// every edge present in both directions.
void expect_well_formed(const Graph& g) {
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto row = g.neighbors(v);
    for (std::size_t i = 0; i < row.size(); ++i) {
      ASSERT_NE(row[i], v) << "self-loop at node " << v;
      if (i > 0) {
        ASSERT_LT(row[i - 1], row[i])
            << "row " << v << " not sorted/deduplicated";
      }
      ASSERT_TRUE(g.has_edge(row[i], v))
          << "edge " << v << "->" << row[i] << " missing its reverse";
    }
  }
}

// n chosen to span several 4096-node chunks so the parallel paths (and
// the chunk-boundary arithmetic) genuinely execute.
constexpr NodeId kN = 12'000;

TEST(Pargen, GnpByteIdenticalAcrossThreadCounts) {
  const Graph one = gnp(kN, 12.0 / kN, 7, {.threads = 1});
  const Graph four = gnp(kN, 12.0 / kN, 7, {.threads = 4});
  expect_identical(one, four);
  expect_well_formed(one);
  EXPECT_TRUE(is_connected(one));
}

TEST(Pargen, RggByteIdenticalAcrossThreadCounts) {
  const Graph one = random_geometric(kN, 0.02, 7, {.threads = 1});
  const Graph four = random_geometric(kN, 0.02, 7, {.threads = 4});
  expect_identical(one, four);
  expect_well_formed(one);
  EXPECT_TRUE(is_connected(one));
}

TEST(Pargen, BaByteIdenticalAcrossThreadCounts) {
  const Graph one = barabasi_albert(kN, 3, 7, {.threads = 1});
  const Graph four = barabasi_albert(kN, 3, 7, {.threads = 4});
  expect_identical(one, four);
  expect_well_formed(one);
  EXPECT_TRUE(is_connected(one));
}

TEST(Pargen, ChungLuByteIdenticalAcrossThreadCounts) {
  const Graph one = chung_lu(kN, 2.5, 12.0, 7, {.threads = 1});
  const Graph four = chung_lu(kN, 2.5, 12.0, 7, {.threads = 4});
  expect_identical(one, four);
  expect_well_formed(one);
  EXPECT_TRUE(is_connected(one));
}

TEST(Pargen, DifferentSeedsDifferentGraphs) {
  const Graph a = gnp(2'000, 0.01, 1);
  const Graph b = gnp(2'000, 0.01, 2);
  // Same distribution, different draws: identical CSR would mean the
  // seed never reached the samplers.
  bool differs = a.edge_count() != b.edge_count();
  for (NodeId v = 0; !differs && v < a.node_count(); ++v) {
    const auto ra = a.neighbors(v), rb = b.neighbors(v);
    differs = !std::equal(ra.begin(), ra.end(), rb.begin(), rb.end());
  }
  EXPECT_TRUE(differs);
}

// ------------------------------------------------------- gnp distribution

TEST(Pargen, GnpCompatMatchesHandWrittenBernoulliLoop) {
  // gnp_compat IS the textbook loop: one uniform_real per ordered pair
  // (u, v), u < v. Replay it by hand and demand the same edge set (the
  // seed below yields a connected sample, so repair adds nothing).
  constexpr NodeId n = 200;
  constexpr double p = 0.05;
  constexpr std::uint64_t seed = 9;
  const Graph g = gnp(n, p, seed, {.gnp_compat = true});
  util::Rng rng(seed);
  std::uint64_t expected_edges = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.uniform_real() < p) {
        ++expected_edges;
        EXPECT_TRUE(g.has_edge(u, v)) << u << "-" << v;
      }
    }
  }
  ASSERT_TRUE(is_connected(g)) << "pick a connected seed for this test";
  EXPECT_EQ(g.edge_count(), expected_edges);
}

TEST(Pargen, GnpCompatZeroProbabilityIsRepairChain) {
  // p=0 leaves n singletons; the repair policy chains representatives,
  // so exactly n-1 edges appear.
  const Graph g = gnp(50, 0.0, 3, {.gnp_compat = true});
  EXPECT_EQ(g.edge_count(), 49u);
  EXPECT_TRUE(is_connected(g));
  // The chunked sampler repairs identically.
  const Graph skip = gnp(50, 0.0, 3);
  EXPECT_EQ(skip.edge_count(), 49u);
  EXPECT_TRUE(is_connected(skip));
}

TEST(Pargen, GnpSkipSamplerEdgeCountsMatchBernoulliStatistics) {
  // The skip sampler and the Bernoulli loop draw from the same G(n, p):
  // mean edge count over seeds must agree within a few standard errors.
  constexpr NodeId n = 600;
  constexpr double p = 0.02;
  const double pairs = n * (n - 1) / 2.0;
  const double mean = pairs * p;
  const double sd = std::sqrt(pairs * p * (1 - p));
  constexpr int kSeeds = 20;
  double skip_sum = 0.0, compat_sum = 0.0;
  for (int s = 0; s < kSeeds; ++s) {
    // p >> 1/n here, so samples are connected whp and repair edges (which
    // would bias the count up by < #components) essentially never fire.
    skip_sum += static_cast<double>(gnp(n, p, 100 + s).edge_count());
    compat_sum += static_cast<double>(
        gnp(n, p, 200 + s, {.gnp_compat = true}).edge_count());
  }
  const double tol = 4.0 * sd / std::sqrt(static_cast<double>(kSeeds));
  EXPECT_NEAR(skip_sum / kSeeds, mean, tol);
  EXPECT_NEAR(compat_sum / kSeeds, mean, tol);
}

TEST(Pargen, GnpFullProbabilityIsClique) {
  const Graph g = gnp(80, 1.0, 5);
  EXPECT_EQ(g.edge_count(), 80u * 79 / 2);
  for (NodeId v = 0; v < 80; ++v) EXPECT_EQ(g.degree(v), 79u);
}

// ----------------------------------------------------- scale-free families

TEST(Pargen, BaDegreeAndEdgeCountSanity) {
  constexpr NodeId n = 20'000;
  constexpr std::uint32_t m = 4;
  const Graph g = barabasi_albert(n, m, 11);
  // Each node emits m edges; self-loops (bootstrap) and duplicate targets
  // shave a few off, repair may add a few back.
  EXPECT_LE(g.edge_count(), static_cast<std::uint64_t>(n) * m);
  EXPECT_GE(g.edge_count(), static_cast<std::uint64_t>(0.8 * n * m));
  // Preferential attachment: the most-attached node collects far more
  // than the uniform-attachment expectation of ~m log n.
  EXPECT_GT(g.max_degree(), 8 * m * static_cast<std::uint32_t>(std::log(n)));
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_GE(g.degree(v), 1u) << "node " << v << " isolated after repair";
  }
}

TEST(Pargen, ChungLuAverageDegreeTracksTargetWithHeavyTail) {
  constexpr NodeId n = 20'000;
  constexpr double target = 12.0;
  const Graph g = chung_lu(n, 2.5, target, 11);
  EXPECT_NEAR(g.average_degree(), target, 0.2 * target);
  // Power-law weights: the top node dwarfs the average (heavy tail),
  // which a G(n, p) of the same density never produces.
  EXPECT_GT(g.max_degree(), 10 * static_cast<std::uint32_t>(target));
}

TEST(Pargen, ChungLuRejectsDegenerateParameters) {
  EXPECT_THROW(chung_lu(100, 2.0, 12.0, 1), std::invalid_argument);
  EXPECT_THROW(chung_lu(100, 2.5, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(chung_lu(1, 2.5, 12.0, 1), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(100, 0, 1), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(1, 2, 1), std::invalid_argument);
  EXPECT_THROW(gnp(0, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(random_geometric(100, 0.0, 1), std::invalid_argument);
}

// ----------------------------------------------------------- Graph::from_csr

TEST(Pargen, FromCsrValidatesStructure) {
  using V64 = std::vector<std::uint64_t>;
  using VN = std::vector<NodeId>;
  // A valid 2-node graph with one edge.
  const Graph g = Graph::from_csr(V64{0, 1, 2}, VN{1, 0});
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  // Empty offsets, bad front, size mismatch, non-monotone, id range.
  EXPECT_THROW(Graph::from_csr(V64{}, VN{}), std::invalid_argument);
  EXPECT_THROW(Graph::from_csr(V64{1, 2}, VN{0}), std::invalid_argument);
  EXPECT_THROW(Graph::from_csr(V64{0, 1, 2}, VN{1}), std::invalid_argument);
  EXPECT_THROW(Graph::from_csr(V64{0, 2, 1}, VN{1, 0, 0}),
               std::invalid_argument);
  EXPECT_THROW(Graph::from_csr(V64{0, 1, 2}, VN{2, 0}),
               std::invalid_argument);
}

// ------------------------------------------------------------ thread knobs

class PargenEnv : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("RADIOCAST_GEN_THREADS"); }
};

TEST_F(PargenEnv, ResolveThreadsPrecedence) {
  // Explicit flag value wins over everything, capped at 64.
  setenv("RADIOCAST_GEN_THREADS", "2", 1);
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(1000), 64);
  // Flag absent: the env var decides.
  EXPECT_EQ(resolve_threads(0), 2);
  unsetenv("RADIOCAST_GEN_THREADS");
  // Neither: hardware default, clamped to [1, 8].
  const int fallback = resolve_threads(0);
  EXPECT_GE(fallback, 1);
  EXPECT_LE(fallback, 8);
}

TEST_F(PargenEnv, InvalidEnvValuesThrowInsteadOfDegrading) {
  for (const char* bad : {"junk", "0", "-3", "2.5", ""}) {
    setenv("RADIOCAST_GEN_THREADS", bad, 1);
    EXPECT_THROW(resolve_threads(0), std::invalid_argument)
        << "RADIOCAST_GEN_THREADS='" << bad << "'";
  }
}

TEST_F(PargenEnv, EnvDrivesGenerationWithoutChangingBytes) {
  const Graph base = gnp(2'000, 0.005, 13, {.threads = 1});
  setenv("RADIOCAST_GEN_THREADS", "4", 1);
  const Graph via_env = gnp(2'000, 0.005, 13);  // threads = 0 -> env
  expect_identical(base, via_env);
}

}  // namespace
}  // namespace radiocast::graph::pargen
