// Leader election (Algorithm 6 / Theorem 5.2): agreement, uniqueness,
// leader validity across families and seeds.
#include "core/leader_election.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace radiocast::core {
namespace {

TEST(LeaderElection, BasicGridElection) {
  const graph::Graph g = graph::grid(10, 10);
  const auto r = elect_leader(g, 18, LeaderElectionParams{}, 1);
  ASSERT_TRUE(r.success);
  EXPECT_LT(r.leader, g.node_count());
  EXPECT_EQ(r.agreeing, g.node_count());
  EXPECT_GT(r.candidate_count, 0u);
}

TEST(LeaderElection, CandidateCountIsThetaLogN) {
  const graph::Graph g = graph::grid(20, 20);  // n = 400, log2 n ~ 8.6
  double total = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto r = elect_leader(g, 38, LeaderElectionParams{}, seed);
    total += r.candidate_count;
  }
  const double avg = total / 10;
  // E[|C|] = candidate_c * log2 n ~ 17; accept a wide band.
  EXPECT_GT(avg, 5.0);
  EXPECT_LT(avg, 60.0);
}

TEST(LeaderElection, SingleNode) {
  const graph::Graph g = graph::path(1);
  const auto r = elect_leader(g, 1, LeaderElectionParams{}, 2);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.leader, 0u);
}

TEST(LeaderElection, TwoNodes) {
  const graph::Graph g = graph::path(2);
  const auto r = elect_leader(g, 1, LeaderElectionParams{}, 3);
  EXPECT_TRUE(r.success);
  EXPECT_LT(r.leader, 2u);
}

TEST(LeaderElection, DeterministicGivenSeed) {
  const graph::Graph g = graph::cycle(50);
  const auto a = elect_leader(g, 25, LeaderElectionParams{}, 9);
  const auto b = elect_leader(g, 25, LeaderElectionParams{}, 9);
  EXPECT_EQ(a.leader, b.leader);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(LeaderElection, LeaderVariesAcrossSeeds) {
  const graph::Graph g = graph::grid(12, 12);
  std::set<graph::NodeId> leaders;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto r = elect_leader(g, 22, LeaderElectionParams{}, seed);
    ASSERT_TRUE(r.success);
    leaders.insert(r.leader);
  }
  EXPECT_GT(leaders.size(), 1u);  // symmetry actually broken by randomness
}

TEST(LeaderElection, HigherCandidateRateStillWorks) {
  const graph::Graph g = graph::grid(8, 8);
  LeaderElectionParams p;
  p.candidate_c = 8.0;  // many candidates
  const auto r = elect_leader(g, 14, p, 4);
  EXPECT_TRUE(r.success);
}

class LeFamilies
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(LeFamilies, AgreementEverywhere) {
  const auto [fam, seed] = GetParam();
  util::Rng rng(seed * 100 + fam);
  graph::Graph g;
  switch (fam) {
    case 0: g = graph::path(120); break;
    case 1: g = graph::path_of_cliques(15, 8); break;
    case 2: g = graph::random_geometric(200, 0.1, rng); break;
    case 3: g = graph::gnp(200, 0.03, rng); break;
    default: g = graph::balanced_binary_tree(127); break;
  }
  const auto d = std::max(2u, graph::diameter_double_sweep(g));
  const auto r = elect_leader(g, d, LeaderElectionParams{}, seed);
  EXPECT_TRUE(r.success) << "family " << fam << " seed " << seed
                         << " agreeing " << r.agreeing << "/"
                         << g.node_count();
  EXPECT_LT(r.leader, g.node_count());
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesSeeds, LeFamilies,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace radiocast::core
