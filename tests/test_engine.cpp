// Engine + Protocol interface tests: a tiny flooding protocol written
// against the node-local API must complete broadcast on collision-free
// topologies and respect the model's information constraints.
#include "radio/engine.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "schedule/decay.hpp"

namespace radiocast::radio {
namespace {

/// Flood: the source transmits its message every round; every node that
/// has the message transmits it every round. On a path this is collision-
/// free and advances exactly one hop per round.
class FloodProtocol : public Protocol {
 public:
  explicit FloodProtocol(bool is_source) : is_source_(is_source) {}
  void start(const NodeInfo& info, util::Rng rng) override {
    info_ = info;
    (void)rng;
    if (is_source_) payload_ = 42;
  }
  Action on_round(Round) override {
    return payload_ == kNoPayload ? Action::listen() : Action::send(payload_);
  }
  void on_message(Round, Payload p) override {
    if (payload_ == kNoPayload) payload_ = p;
  }
  bool done() const override { return payload_ != kNoPayload; }
  Payload payload() const { return payload_; }

 private:
  bool is_source_;
  NodeInfo info_{};
  Payload payload_ = kNoPayload;
};

/// Decay-based flooding, correct on any topology whp.
class DecayFloodProtocol : public Protocol {
 public:
  explicit DecayFloodProtocol(bool is_source) : is_source_(is_source) {}
  void start(const NodeInfo& info, util::Rng rng) override {
    rng_ = rng;
    lambda_ = schedule::decay_round_length(info.n);
    if (is_source_) payload_ = 7;
  }
  Action on_round(Round r) override {
    if (payload_ == kNoPayload) return Action::listen();
    const std::uint32_t step =
        static_cast<std::uint32_t>(r % lambda_) + 1;
    if (rng_.bernoulli(schedule::decay_probability(step))) {
      return Action::send(payload_);
    }
    return Action::listen();
  }
  void on_message(Round, Payload p) override {
    if (payload_ == kNoPayload) payload_ = p;
  }
  bool done() const override { return payload_ != kNoPayload; }

 private:
  bool is_source_;
  util::Rng rng_{0};
  std::uint32_t lambda_ = 1;
  Payload payload_ = kNoPayload;
};

TEST(Engine, FloodOnPathTakesExactlyDistanceRounds) {
  const auto g = graph::path(10);
  Engine eng(g, 9);
  util::Rng seeds(1);
  eng.install(
      [](graph::NodeId v) -> std::unique_ptr<Protocol> {
        return std::make_unique<FloodProtocol>(v == 0);
      },
      seeds);
  const auto r = eng.run(100);
  EXPECT_TRUE(r.all_done);
  EXPECT_EQ(r.rounds, 9u);  // one hop per round, 9 hops
}

TEST(Engine, FloodOnStarCollidesForever) {
  // Source = leaf 1. Round 0: centre informed. Round 1+: centre and leaf 1
  // both transmit -> every other leaf has 1 transmitting neighbour (the
  // centre) ... leaves 2..: neighbours = {0}; 0 transmits, 1 transmits but
  // is not their neighbour, so they DO get informed. The real collision
  // case: two informed leaves + centre listening. Build: source = centre.
  // Then round 1: all leaves informed (centre unique transmitter). Done.
  // Instead: two sources (leaves 1 and 2) -> centre never receives.
  const auto g = graph::star(5);
  Engine eng(g, 2);
  util::Rng seeds(2);
  eng.install(
      [](graph::NodeId v) -> std::unique_ptr<Protocol> {
        return std::make_unique<FloodProtocol>(v == 1 || v == 2);
      },
      seeds);
  const auto r = eng.run(200);
  EXPECT_FALSE(r.all_done);  // deterministic collision at the centre
  EXPECT_TRUE(r.hit_round_limit);
  EXPECT_GT(r.collisions, 0u);
}

TEST(Engine, DecayFloodInformsEveryoneDespiteCollisions) {
  util::Rng rng(3);
  const auto g = graph::random_geometric(150, 0.12, rng);
  Engine eng(g, 30);
  util::Rng seeds(4);
  eng.install(
      [](graph::NodeId v) -> std::unique_ptr<Protocol> {
        return std::make_unique<DecayFloodProtocol>(v == 0);
      },
      seeds);
  const auto r = eng.run(20000);
  EXPECT_TRUE(r.all_done);
}

TEST(Engine, StopPredicateEndsRun) {
  const auto g = graph::path(50);
  Engine eng(g, 49);
  util::Rng seeds(5);
  eng.install(
      [](graph::NodeId v) -> std::unique_ptr<Protocol> {
        return std::make_unique<FloodProtocol>(v == 0);
      },
      seeds);
  const auto r = eng.run(
      1000, [](const Engine& e) { return e.round() >= 5; });
  EXPECT_EQ(r.rounds, 5u);
  EXPECT_FALSE(r.all_done);
}

TEST(Engine, TraceRecordsActivity) {
  const auto g = graph::path(6);
  Engine eng(g, 5);
  Trace trace;
  eng.attach_trace(&trace);
  util::Rng seeds(6);
  eng.install(
      [](graph::NodeId v) -> std::unique_ptr<Protocol> {
        return std::make_unique<FloodProtocol>(v == 0);
      },
      seeds);
  eng.run(100);
  ASSERT_EQ(trace.rounds().size(), 5u);
  // Flood on a path: round t has t+1 transmitters.
  EXPECT_EQ(trace.rounds()[0].transmitters, 1u);
  EXPECT_EQ(trace.rounds()[4].transmitters, 5u);
  EXPECT_EQ(trace.total_deliveries(), 5u);
  EXPECT_FALSE(trace.activity_summary().empty());
}

TEST(Engine, ProtocolSeesCorrectNodeInfo) {
  class Probe : public Protocol {
   public:
    void start(const NodeInfo& info, util::Rng) override { info_ = info; }
    Action on_round(Round) override { return Action::listen(); }
    void on_message(Round, Payload) override {}
    NodeInfo info_{};
  };
  const auto g = graph::cycle(7);
  Engine eng(g, 3);
  util::Rng seeds(7);
  eng.install(
      [](graph::NodeId) -> std::unique_ptr<Protocol> {
        return std::make_unique<Probe>();
      },
      seeds);
  for (graph::NodeId v = 0; v < 7; ++v) {
    const auto& p = static_cast<Probe&>(eng.protocol(v));
    EXPECT_EQ(p.info_.node_id, v);
    EXPECT_EQ(p.info_.n, 7u);
    EXPECT_EQ(p.info_.diameter, 3u);
  }
}

TEST(Engine, CollisionDetectionModelInvokesCallback) {
  class CdProbe : public Protocol {
   public:
    explicit CdProbe(bool tx) : tx_(tx) {}
    void start(const NodeInfo&, util::Rng) override {}
    Action on_round(Round) override {
      return tx_ ? Action::send(1) : Action::listen();
    }
    void on_message(Round, Payload) override {}
    void on_collision(Round) override { ++collisions_; }
    bool tx_;
    int collisions_ = 0;
  };
  const auto g = graph::star(4);
  Engine eng(g, 2, CollisionModel::kDetection);
  util::Rng seeds(8);
  eng.install(
      [](graph::NodeId v) -> std::unique_ptr<Protocol> {
        return std::make_unique<CdProbe>(v != 0);
      },
      seeds);
  eng.run(3);
  EXPECT_EQ(static_cast<CdProbe&>(eng.protocol(0)).collisions_, 3);
}

}  // namespace
}  // namespace radiocast::radio
