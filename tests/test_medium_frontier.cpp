// Differential tests for the event-driven frontier backend: the wake-queue
// kernel must be byte-identical to the scalar reference (and agree with
// bitslice/sharded) on deliveries, delivered masks, best[] planes, and
// tallies — across both collision models, 1/7/64 lanes, and both dense
// rounds and the sparse-tail rounds the backend exists for. Also covered:
// the lazy round-stamp reset (no O(n) clear means stale state is a real
// hazard), the sparse resolve_batch_active entry point's default dense
// adapter on every backend, and the active_listeners cost diagnostic.
#include "radio/medium_frontier.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "graph/generators.hpp"
#include "radio/batch_network.hpp"
#include "radio/medium.hpp"
#include "radio/network.hpp"
#include "util/rng.hpp"

namespace radiocast::radio {
namespace {

using graph::Graph;
using graph::NodeId;

constexpr MediumKind kAllKinds[] = {MediumKind::kScalar,
                                    MediumKind::kBitslice,
                                    MediumKind::kSharded,
                                    MediumKind::kFrontier};

std::vector<BatchDelivery> sorted(std::vector<BatchDelivery> v) {
  std::sort(v.begin(), v.end(),
            [](const BatchDelivery& a, const BatchDelivery& b) {
              return std::tie(a.node, a.lane, a.from) <
                     std::tie(b.node, b.lane, b.from);
            });
  return v;
}

std::vector<std::uint64_t> delivered_masks(const BatchOutcome& o, NodeId n) {
  std::vector<std::uint64_t> m(n, 0);
  for (const auto& d : o.delivered) m[d.node] |= d.lanes;
  return m;
}

std::vector<std::uint64_t> collision_masks(const BatchOutcome& o, NodeId n) {
  std::vector<std::uint64_t> m(n, 0);
  for (const auto& c : o.collisions) m[c.node] |= c.lanes;
  return m;
}

/// Builds a transmit-mask round: `density` per (node, lane), restricted to
/// the first `sources` nodes when sources < n (the sparse-tail shape).
std::vector<std::uint64_t> make_round(NodeId n, int lanes, double density,
                                      NodeId sources, util::Rng& rng) {
  std::vector<std::uint64_t> tx_mask(n, 0);
  for (NodeId v = 0; v < std::min(sources, n); ++v) {
    for (int l = 0; l < lanes; ++l) {
      if (rng.bernoulli(density)) tx_mask[v] |= std::uint64_t{1} << l;
    }
  }
  return tx_mask;
}

/// Runs one dense-mask round on `kind` and checks every observable against
/// the scalar reference outcome.
void check_against_scalar(const Graph& g, CollisionModel model, int lanes,
                          std::span<const std::uint64_t> tx_mask,
                          std::span<const Payload> planes,
                          const BatchOutcome& want,
                          std::span<const Payload> want_best,
                          MediumKind kind) {
  const NodeId n = g.node_count();
  const PayloadPlanes payload = PayloadPlanes::lane_major(planes, n);
  auto medium = make_medium(kind, g, model, /*threads=*/3);
  BatchOutcome got;
  medium->resolve_batch(tx_mask, payload, lanes, got);
  const std::string ctx = std::string(to_string(kind)) +
                          " lanes=" + std::to_string(lanes) +
                          " model=" + std::to_string(static_cast<int>(model));
  EXPECT_EQ(got.transmitter_count, want.transmitter_count) << ctx;
  EXPECT_EQ(got.delivered_count, want.delivered_count) << ctx;
  EXPECT_EQ(got.collided_count, want.collided_count) << ctx;
  EXPECT_EQ(sorted(got.deliveries), sorted(want.deliveries)) << ctx;
  EXPECT_EQ(delivered_masks(got, n), delivered_masks(want, n)) << ctx;
  EXPECT_EQ(collision_masks(got, n), collision_masks(want, n)) << ctx;
  if (model == CollisionModel::kNoDetection) {
    EXPECT_TRUE(got.collisions.empty()) << ctx;
  }

  std::vector<Payload> got_best(static_cast<std::size_t>(lanes) * n,
                                kNoPayload);
  BatchOutcome fold_out;
  medium->resolve_batch_max(tx_mask, payload, lanes,
                            KnowledgePlanes::lane_major(got_best, n),
                            fold_out);
  EXPECT_EQ(got_best, std::vector<Payload>(want_best.begin(), want_best.end()))
      << ctx;  // byte-identical planes
  EXPECT_EQ(delivered_masks(fold_out, n), delivered_masks(want, n)) << ctx;
}

// Tentpole differential: dense rounds (every node may transmit) and
// sparse-tail rounds (a handful of sources in a large quiet graph) across
// both collision models and 1/7/64 lanes, on GnP and cluster topologies.
TEST(MediumFrontier, DifferentialAgainstAllBackends) {
  util::Rng rng(91);
  const Graph gnp = graph::gnp(140, 0.06, rng);
  const Graph cliques = graph::path_of_cliques(8, 7);
  for (const Graph* g : {&gnp, &cliques}) {
    const NodeId n = g->node_count();
    for (const CollisionModel model :
         {CollisionModel::kNoDetection, CollisionModel::kDetection}) {
      for (const int lanes : {1, 7, 64}) {
        // Dense round + sparse-tail round (4 sources, low lane density).
        for (const bool sparse : {false, true}) {
          const std::vector<std::uint64_t> tx_mask =
              sparse ? make_round(n, lanes, 0.5, 4, rng)
                     : make_round(n, lanes, 0.25, n, rng);
          std::vector<Payload> planes(static_cast<std::size_t>(lanes) * n);
          for (int l = 0; l < lanes; ++l) {
            for (NodeId v = 0; v < n; ++v) {
              planes[static_cast<std::size_t>(l) * n + v] =
                  5'000 * static_cast<Payload>(l + 1) + v;
            }
          }
          auto scalar = make_medium(MediumKind::kScalar, *g, model);
          BatchOutcome want;
          scalar->resolve_batch(
              tx_mask, PayloadPlanes::lane_major(planes, n), lanes, want);
          std::vector<Payload> want_best(static_cast<std::size_t>(lanes) * n,
                                         kNoPayload);
          BatchOutcome want_fold;
          scalar->resolve_batch_max(tx_mask,
                                    PayloadPlanes::lane_major(planes, n),
                                    lanes,
                                    KnowledgePlanes::lane_major(want_best, n),
                                    want_fold);
          for (const MediumKind kind : {MediumKind::kFrontier,
                                        MediumKind::kBitslice,
                                        MediumKind::kSharded}) {
            check_against_scalar(*g, model, lanes, tx_mask, planes, want,
                                 want_best, kind);
          }
        }
      }
    }
  }
}

// The single-instance facade must match scalar byte-for-byte — including
// delivery ORDER: the frontier queue records listeners in first-touch
// order, exactly the order the scalar reference appends them.
TEST(MediumFrontier, ResolveMatchesScalarByteForByte) {
  util::Rng rng(92);
  const Graph g = graph::gnp(120, 0.07, rng);
  const NodeId n = g.node_count();
  for (const CollisionModel model :
       {CollisionModel::kNoDetection, CollisionModel::kDetection}) {
    Network ref(g, model, MediumKind::kScalar);
    Network frontier(g, model, MediumKind::kFrontier);
    for (const double density : {0.02, 0.3, 0.8}) {
      std::vector<NodeId> tx;
      std::vector<Payload> pay;
      for (NodeId v = 0; v < n; ++v) {
        if (rng.bernoulli(density)) {
          tx.push_back(v);
          pay.push_back(3000 + v);
        }
      }
      SparseOutcome want, got;
      ref.resolve(tx, pay, want);
      frontier.resolve(tx, pay, got);
      EXPECT_EQ(got.deliveries, want.deliveries);  // order included
      EXPECT_EQ(got.transmitter_count, want.transmitter_count);
      EXPECT_EQ(got.collided_count, want.collided_count);
      std::vector<NodeId> got_coll = got.collided_nodes;
      std::vector<NodeId> want_coll = want.collided_nodes;
      std::sort(got_coll.begin(), got_coll.end());
      std::sort(want_coll.begin(), want_coll.end());
      EXPECT_EQ(got_coll, want_coll);
    }
  }
}

// Lazy-reset regression: with no O(n) clear, state from round r must not
// leak into round r+1. Disjoint transmitter sets (every stamp miss takes
// the wake path) followed by overlapping sets (stamp hits must dedup but
// not resurrect the previous round's lanes).
TEST(MediumFrontier, LazyResetAcrossRounds) {
  util::Rng rng(93);
  const Graph g = graph::gnp(100, 0.08, rng);
  const NodeId n = g.node_count();
  for (const CollisionModel model :
       {CollisionModel::kNoDetection, CollisionModel::kDetection}) {
    // A fresh scalar medium per round is the stateless reference; one
    // long-lived frontier medium accumulates any reset bug.
    auto frontier = make_medium(MediumKind::kFrontier, g, model);
    std::vector<Payload> planes(n);
    for (NodeId v = 0; v < n; ++v) planes[v] = 100 + v;
    auto run_round = [&](const std::vector<std::uint64_t>& tx_mask) {
      auto scalar = make_medium(MediumKind::kScalar, g, model);
      BatchOutcome want, got;
      scalar->resolve_batch(tx_mask, planes, 64, want);
      frontier->resolve_batch(tx_mask, planes, 64, got);
      EXPECT_EQ(sorted(got.deliveries), sorted(want.deliveries));
      EXPECT_EQ(delivered_masks(got, n), delivered_masks(want, n));
      EXPECT_EQ(collision_masks(got, n), collision_masks(want, n));
      EXPECT_EQ(got.delivered_count, want.delivered_count);
      EXPECT_EQ(got.collided_count, want.collided_count);
    };
    // Phase 1: disjoint halves alternate (nothing stamped twice in a row).
    for (int round = 0; round < 4; ++round) {
      std::vector<std::uint64_t> tx_mask(n, 0);
      for (NodeId v = (round % 2 == 0) ? 0 : n / 2;
           v < ((round % 2 == 0) ? n / 2 : n); ++v) {
        if (rng.bernoulli(0.3)) tx_mask[v] = rng();
      }
      run_round(tx_mask);
    }
    // Phase 2: heavily overlapping sets with round-varying lane masks —
    // a stale tx_lanes_ or one_/two_ word changes the outcome.
    std::vector<std::uint64_t> base = make_round(n, 64, 0.4, n, rng);
    for (int round = 0; round < 4; ++round) {
      std::vector<std::uint64_t> tx_mask = base;
      for (NodeId v = 0; v < n; ++v) {
        if (rng.bernoulli(0.5)) tx_mask[v] = rng() & base[v];
      }
      run_round(tx_mask);
    }
  }
}

// The sparse entry point must agree with the dense one on every backend
// (frontier runs it natively; the other three go through the default
// dense-materialization adapter) — including duplicate entries, whose lane
// masks OR together.
TEST(MediumFrontier, ResolveBatchActiveMatchesDenseOnAllBackends) {
  util::Rng rng(94);
  const Graph g = graph::gnp(110, 0.07, rng);
  const NodeId n = g.node_count();
  const int lanes = 64;
  std::vector<Payload> planes(n);
  for (NodeId v = 0; v < n; ++v) planes[v] = 700 + v;
  for (const CollisionModel model :
       {CollisionModel::kNoDetection, CollisionModel::kDetection}) {
    std::vector<std::uint64_t> tx_mask = make_round(n, lanes, 0.1, n, rng);
    // Sparse view, with each transmitter's mask split across duplicate
    // entries to exercise the OR semantics.
    std::vector<ActiveTx> entries;
    for (NodeId v = 0; v < n; ++v) {
      if (tx_mask[v] == 0) continue;
      const std::uint64_t half = tx_mask[v] & rng();
      if (half != 0 && half != tx_mask[v]) {
        entries.push_back({v, half});
        entries.push_back({v, tx_mask[v] & ~half});
        entries.push_back({v, half});  // full duplicate, must be idempotent
      } else {
        entries.push_back({v, tx_mask[v]});
      }
    }
    for (const MediumKind kind : kAllKinds) {
      auto medium = make_medium(kind, g, model, 3);
      BatchOutcome want, got;
      medium->resolve_batch(tx_mask, planes, lanes, want);
      medium->resolve_batch_active(entries, planes, lanes, got);
      const std::string ctx(to_string(kind));
      EXPECT_EQ(got.transmitter_count, want.transmitter_count) << ctx;
      EXPECT_EQ(got.delivered_count, want.delivered_count) << ctx;
      EXPECT_EQ(got.collided_count, want.collided_count) << ctx;
      EXPECT_EQ(sorted(got.deliveries), sorted(want.deliveries)) << ctx;
      EXPECT_EQ(delivered_masks(got, n), delivered_masks(want, n)) << ctx;
      EXPECT_EQ(collision_masks(got, n), collision_masks(want, n)) << ctx;

      // Max-fold through the sparse entry point.
      std::vector<Payload> want_best(static_cast<std::size_t>(lanes) * n,
                                     kNoPayload);
      std::vector<Payload> got_best(static_cast<std::size_t>(lanes) * n,
                                    kNoPayload);
      BatchOutcome fold_want, fold_got;
      medium->resolve_batch_max(tx_mask, planes, lanes,
                                KnowledgePlanes::lane_major(want_best, n),
                                fold_want);
      medium->resolve_batch_max_active(
          entries, planes, lanes, KnowledgePlanes::lane_major(got_best, n),
          fold_got);
      EXPECT_EQ(got_best, want_best) << ctx;

      // Out-of-range nodes must throw on every backend, and the medium
      // must stay usable afterwards (scratch not left dirty).
      const std::vector<ActiveTx> bad{{n, 1}};
      BatchOutcome bad_out;
      EXPECT_THROW(
          medium->resolve_batch_active(bad, planes, lanes, bad_out),
          std::invalid_argument)
          << ctx;
      BatchOutcome after;
      medium->resolve_batch_active(entries, planes, lanes, after);
      EXPECT_EQ(delivered_masks(after, n), delivered_masks(want, n)) << ctx;
    }
  }
}

// LaneExecutor wiring: BatchNetwork::step_lanes_active must hit the native
// frontier kernel and produce the same outcome as the dense step().
TEST(MediumFrontier, BatchNetworkStepLanesActive) {
  util::Rng rng(95);
  const Graph g = graph::gnp(90, 0.08, rng);
  const NodeId n = g.node_count();
  const int lanes = 64;
  std::vector<std::uint64_t> tx_mask = make_round(n, lanes, 0.15, n, rng);
  std::vector<Payload> payload(n);
  for (NodeId v = 0; v < n; ++v) payload[v] = v;
  std::vector<ActiveTx> entries;
  for (NodeId v = 0; v < n; ++v) {
    if (tx_mask[v] != 0) entries.push_back({v, tx_mask[v]});
  }
  for (const MediumKind kind : kAllKinds) {
    BatchNetwork dense(g, lanes, CollisionModel::kDetection, kind);
    BatchNetwork active(g, lanes, CollisionModel::kDetection, kind);
    BatchOutcome want, got;
    dense.step(tx_mask, payload, want);
    active.step_lanes_active(entries, payload, got);
    const std::string ctx(to_string(kind));
    EXPECT_EQ(sorted(got.deliveries), sorted(want.deliveries)) << ctx;
    EXPECT_EQ(delivered_masks(got, n), delivered_masks(want, n)) << ctx;
    EXPECT_EQ(active.total_deliveries(), dense.total_deliveries()) << ctx;
    EXPECT_EQ(active.total_transmissions(), dense.total_transmissions())
        << ctx;
    EXPECT_EQ(active.total_collisions(), dense.total_collisions()) << ctx;
    EXPECT_EQ(active.rounds_elapsed(), 1u) << ctx;
  }
}

// active_listeners: every backend agrees on the woken-set size (every
// node with >=1 transmitting neighbour, transmitters included) — the
// sharded backend counts per slice and sums in the merge — and bitslice
// agrees on the batch path too.
TEST(MediumFrontier, ActiveListenersDiagnostic) {
  util::Rng rng(96);
  const Graph g = graph::gnp(100, 0.08, rng);
  const NodeId n = g.node_count();
  std::vector<NodeId> tx;
  std::vector<Payload> pay;
  for (NodeId v = 0; v < n; ++v) {
    if (rng.bernoulli(0.2)) {
      tx.push_back(v);
      pay.push_back(v);
    }
  }
  // Ground truth: nodes with at least one transmitting neighbour.
  std::vector<std::uint8_t> is_tx(n, 0);
  for (const NodeId u : tx) is_tx[u] = 1;
  std::uint32_t want_active = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId u : g.neighbors(v)) {
      if (is_tx[u]) {
        ++want_active;
        break;
      }
    }
  }
  ASSERT_GT(want_active, 0u);

  for (const MediumKind kind : kAllKinds) {
    auto medium = make_medium(kind, g, CollisionModel::kDetection, 3);
    SparseOutcome out;
    medium->resolve(tx, pay, out);
    EXPECT_EQ(out.active_listeners, want_active) << to_string(kind);
    EXPECT_EQ(medium->phase_timers().active_listeners, want_active)
        << to_string(kind);
  }

  // Batch path: frontier's queue size == bitslice's emit count, and the
  // sparse-tail shape keeps it far below n.
  std::vector<std::uint64_t> tx_mask = make_round(n, 64, 0.6, 3, rng);
  std::vector<Payload> planes(n, 1);
  BatchOutcome a, b;
  auto frontier = make_medium(MediumKind::kFrontier, g,
                              CollisionModel::kNoDetection);
  auto bitslice = make_medium(MediumKind::kBitslice, g,
                              CollisionModel::kNoDetection);
  frontier->resolve_batch(tx_mask, planes, 64, a);
  bitslice->resolve_batch(tx_mask, planes, 64, b);
  EXPECT_EQ(a.active_listeners, b.active_listeners);
  EXPECT_LT(a.active_listeners, n);
}

// Phase attribution: the frontier kernel spends its round in
// enqueue/drain (+ recover when senders are requested), never in the
// dense traverse/output phases; repeated rounds accumulate rounds and the
// rowscan counter; mask-only rounds skip recovery entirely.
TEST(MediumFrontier, PhaseTimersAttribution) {
  util::Rng rng(97);
  const Graph g = graph::gnp(80, 0.1, rng);
  const NodeId n = g.node_count();
  std::vector<std::uint64_t> tx_mask = make_round(n, 64, 0.2, n, rng);
  std::vector<Payload> planes(n);
  for (NodeId v = 0; v < n; ++v) planes[v] = v + 1;
  auto medium = make_medium(MediumKind::kFrontier, g,
                            CollisionModel::kNoDetection);
  BatchOutcome out;
  for (int round = 0; round < 3; ++round) {
    medium->resolve_batch(tx_mask, planes, 64, out);
  }
  const PhaseTimers& t = medium->phase_timers();
  EXPECT_EQ(t.rounds, 3u);
  EXPECT_EQ(t.rowscan_rounds, 3u);
  EXPECT_EQ(t.traverse_ns, 0u);
  EXPECT_EQ(t.output_ns, 0u);
  EXPECT_GT(t.active_listeners, 0u);

  medium->reset_phase_timers();
  EXPECT_EQ(medium->phase_timers().rounds, 0u);
  EXPECT_EQ(medium->phase_timers().active_listeners, 0u);
  medium->resolve_batch(tx_mask, planes, 64, out, /*with_senders=*/false);
  EXPECT_EQ(medium->phase_timers().rounds, 1u);
  EXPECT_EQ(medium->phase_timers().rowscan_rounds, 0u);
  EXPECT_EQ(medium->phase_timers().recover_ns, 0u);

  // kAuto constant-plane max-fold shortcut is counted like bitslice's.
  medium->reset_phase_timers();
  std::vector<Payload> shared(n, 9);
  std::vector<Payload> best(static_cast<std::size_t>(64) * n, kNoPayload);
  BatchOutcome fold_out;
  medium->resolve_batch_max(tx_mask, shared, 64,
                            KnowledgePlanes::lane_major(best, n), fold_out);
  EXPECT_EQ(medium->phase_timers().constfold_rounds, 1u);
  EXPECT_EQ(medium->phase_timers().rowscan_rounds, 0u);
}

TEST(MediumFrontier, ParseAndFactory) {
  EXPECT_EQ(parse_medium_kind("frontier"), MediumKind::kFrontier);
  EXPECT_EQ(to_string(MediumKind::kFrontier), "frontier");
  EXPECT_THROW(parse_medium_kind("quantum"), std::invalid_argument);
  const Graph g = graph::star(5);
  auto medium = make_medium(MediumKind::kFrontier, g,
                            CollisionModel::kNoDetection);
  EXPECT_EQ(medium->name(), "frontier");
}

}  // namespace
}  // namespace radiocast::radio
