#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace radiocast::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  OnlineStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(OnlineStats, Ci95ShrinksWithSamples) {
  OnlineStats small, big;
  for (int i = 0; i < 10; ++i) small.add(i % 3);
  for (int i = 0; i < 1000; ++i) big.add(i % 3);
  EXPECT_GT(small.ci95_halfwidth(), big.ci95_halfwidth());
}

TEST(Sample, QuantilesOfKnownData) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-9);
}

TEST(Sample, QuantileClampsRange) {
  Sample s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(2.0), 3.0);
}

TEST(Sample, MeanAndStddev) {
  Sample s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Sample, AddAfterQuantileStillCorrect) {
  Sample s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(LinearFit, ExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{3, 5, 7, 9, 11};  // y = 1 + 2x
  const auto f = fit_linear(x, y);
  EXPECT_NEAR(f.intercept, 1.0, 1e-10);
  EXPECT_NEAR(f.slope, 2.0, 1e-10);
  EXPECT_NEAR(f.r2, 1.0, 1e-10);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(fit_linear({}, {}).slope, 0.0);
  EXPECT_DOUBLE_EQ(fit_linear({1}, {2}).slope, 0.0);
  // Vertical data: all x equal.
  const auto f = fit_linear({2, 2, 2}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
}

TEST(PowerFit, RecoverExponent) {
  std::vector<double> x, y;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 1.7));
  }
  const auto f = fit_power(x, y);
  EXPECT_NEAR(f.exponent, 1.7, 1e-9);
  EXPECT_NEAR(f.coefficient, 3.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(PowerFit, IgnoresNonPositive) {
  const auto f = fit_power({0.0, 1.0, 2.0, 4.0}, {5.0, 2.0, 4.0, 8.0});
  EXPECT_NEAR(f.exponent, 1.0, 1e-9);  // fitted on (1,2),(2,4),(4,8)
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-5.0);   // clamps to bin 0
  h.add(50.0);   // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, AsciiRendersEveryBin) {
  Histogram h(0.0, 4.0, 4);
  for (int i = 0; i < 10; ++i) h.add(1.5);
  const std::string art = h.ascii(20);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

// ---- Wilson score intervals (sweep success rates)

TEST(Wilson, KnownValue) {
  // 8/10 at z=1.96: the classic worked example — [0.490, 0.943].
  const WilsonInterval w = wilson_interval(8, 10);
  EXPECT_NEAR(w.lo, 0.4902, 5e-4);
  EXPECT_NEAR(w.hi, 0.9433, 5e-4);
}

TEST(Wilson, StaysInsideUnitIntervalAtTheEdges) {
  const WilsonInterval all = wilson_interval(20, 20);
  EXPECT_GT(all.lo, 0.8);   // informative even at p-hat = 1
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  const WilsonInterval none = wilson_interval(0, 20);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_LT(none.hi, 0.2);  // informative even at p-hat = 0
}

TEST(Wilson, DegenerateAndNarrowingCases) {
  const WilsonInterval empty = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 1.0);
  // More trials at the same rate narrow the interval.
  const WilsonInterval small = wilson_interval(8, 16);
  const WilsonInterval big = wilson_interval(800, 1600);
  EXPECT_LT(big.hi - big.lo, small.hi - small.lo);
  // The point estimate always lies inside.
  for (std::size_t s : {0u, 3u, 9u, 10u}) {
    const WilsonInterval w = wilson_interval(s, 10);
    const double p = s / 10.0;
    EXPECT_LE(w.lo, p);
    EXPECT_GE(w.hi, p);
  }
}

}  // namespace
}  // namespace radiocast::util
