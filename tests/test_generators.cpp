#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"

namespace radiocast::graph {
namespace {

TEST(Generators, PathShape) {
  const Graph g = path(10);
  EXPECT_EQ(g.node_count(), 10u);
  EXPECT_EQ(g.edge_count(), 9u);
  EXPECT_EQ(diameter_exact(g), 9u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(5), 2u);
}

TEST(Generators, SingleNodePath) {
  const Graph g = path(1);
  EXPECT_EQ(g.node_count(), 1u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Generators, CycleShape) {
  const Graph g = cycle(8);
  EXPECT_EQ(g.edge_count(), 8u);
  EXPECT_EQ(diameter_exact(g), 4u);
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Generators, CliqueShape) {
  const Graph g = clique(6);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_EQ(diameter_exact(g), 1u);
}

TEST(Generators, StarShape) {
  const Graph g = star(7);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  EXPECT_EQ(diameter_exact(g), 2u);
}

TEST(Generators, GridShapeAndDiameter) {
  const Graph g = grid(4, 6);
  EXPECT_EQ(g.node_count(), 24u);
  EXPECT_EQ(g.edge_count(), 4u * 5 + 3u * 6);
  EXPECT_EQ(diameter_exact(g), 4u + 6u - 2u);
}

TEST(Generators, TorusIsRegular) {
  const Graph g = torus(4, 5);
  EXPECT_EQ(g.node_count(), 20u);
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, BalancedBinaryTree) {
  const Graph g = balanced_binary_tree(15);
  EXPECT_EQ(g.edge_count(), 14u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter_exact(g), 6u);  // leaf -> root -> leaf
}

TEST(Generators, RandomRecursiveTreeIsTree) {
  util::Rng rng(5);
  const Graph g = random_recursive_tree(200, rng);
  EXPECT_EQ(g.edge_count(), 199u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, CaterpillarShape) {
  const Graph g = caterpillar(5, 3);
  EXPECT_EQ(g.node_count(), 20u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter_exact(g), 6u);  // leg - spine(4 hops) - leg
}

TEST(Generators, HypercubeShape) {
  const Graph g = hypercube(4);
  EXPECT_EQ(g.node_count(), 16u);
  EXPECT_EQ(g.edge_count(), 32u);
  EXPECT_EQ(diameter_exact(g), 4u);
}

TEST(Generators, GnpConnectedAndPlausibleDensity) {
  util::Rng rng(7);
  const Graph g = gnp(400, 0.02, rng);
  EXPECT_TRUE(is_connected(g));
  // E[m] ~ C(400,2)*0.02 = 1596; repair adds few edges.
  EXPECT_GT(g.edge_count(), 1200u);
  EXPECT_LT(g.edge_count(), 2000u);
}

TEST(Generators, GnpZeroProbabilityStillConnected) {
  util::Rng rng(9);
  const Graph g = gnp(50, 0.0, rng);
  EXPECT_TRUE(is_connected(g));  // pure repair chain
  EXPECT_EQ(g.edge_count(), 49u);
}

TEST(Generators, GnpFullProbabilityIsClique) {
  util::Rng rng(11);
  const Graph g = gnp(20, 1.0, rng);
  EXPECT_EQ(g.edge_count(), 190u);
}

TEST(Generators, RandomGeometricConnected) {
  util::Rng rng(13);
  const Graph g = random_geometric(500, 0.08, rng);
  EXPECT_EQ(g.node_count(), 500u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomGeometricRespectsRadius) {
  // With a big radius everything connects directly.
  util::Rng rng(15);
  const Graph g = random_geometric(30, 2.0, rng);
  EXPECT_EQ(g.edge_count(), 30u * 29 / 2);
}

TEST(Generators, BarabasiAlbertHubbyAndConnected) {
  util::Rng rng(17);
  const Graph g = barabasi_albert(5000, 3, rng);
  EXPECT_EQ(g.node_count(), 5000u);
  EXPECT_TRUE(is_connected(g));
  // ~m edges per arriving node, minus bootstrap self-loops/duplicates.
  EXPECT_LE(g.edge_count(), 15000u);
  EXPECT_GT(g.edge_count(), 12000u);
  // Preferential attachment concentrates degree far above the mean.
  EXPECT_GT(g.max_degree(), 60u);
}

TEST(Generators, ChungLuDensityTracksTarget) {
  util::Rng rng(19);
  const Graph g = chung_lu(5000, 2.5, 10.0, rng);
  EXPECT_EQ(g.node_count(), 5000u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_NEAR(g.average_degree(), 10.0, 2.5);
  EXPECT_GT(g.max_degree(), 100u);  // heavy tail
}

TEST(Generators, PathOfCliquesShape) {
  const Graph g = path_of_cliques(5, 4);
  EXPECT_EQ(g.node_count(), 20u);
  EXPECT_TRUE(is_connected(g));
  // Each bead is a K4 (6 edges), 4 bridges.
  EXPECT_EQ(g.edge_count(), 5u * 6 + 4);
  // Diameter: within bead 1 hop ends, bridge 1: 3*5-2... measured:
  EXPECT_EQ(diameter_exact(g), 9u);
}

TEST(Generators, CylinderShape) {
  const Graph g = cylinder(6, 5);
  EXPECT_EQ(g.node_count(), 30u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter_exact(g), 5u + 2u);
}

TEST(Generators, BarbellShape) {
  const Graph g = barbell(5, 3);
  EXPECT_EQ(g.node_count(), 13u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter_exact(g), 6u);  // clique hop + 4 path hops + clique hop
}

TEST(Generators, LollipopShape) {
  const Graph g = lollipop(6, 4);
  EXPECT_EQ(g.node_count(), 10u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter_exact(g), 5u);
}

TEST(Generators, RegularishDegreeAndConnectivity) {
  util::Rng rng(17);
  const Graph g = random_regularish(300, 6, rng);
  EXPECT_TRUE(is_connected(g));
  // Union of 3 permutation cycles: degree <= 6, most nodes exactly 6 minus
  // dedup losses.
  EXPECT_LE(g.max_degree(), 6u);
  EXPECT_GT(g.average_degree(), 4.0);
  // Expander-like: diameter O(log n).
  EXPECT_LT(diameter_double_sweep(g), 20u);
}

TEST(Generators, NecklaceShape) {
  util::Rng rng(19);
  const Graph g = necklace(8, 30, 4, rng);
  EXPECT_EQ(g.node_count(), 240u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, DiameterControlledHitsTarget) {
  for (NodeId d : {9u, 30u, 60u}) {
    const Graph g = diameter_controlled(600, d);
    EXPECT_EQ(g.node_count(), 600u);
    EXPECT_TRUE(is_connected(g));
    const auto measured = diameter_exact(g);
    // Within a factor ~1.5 of the request (bead rounding).
    EXPECT_GE(measured, d / 2) << "requested " << d;
    EXPECT_LE(measured, d + d / 2 + 3) << "requested " << d;
  }
}

TEST(Generators, InvalidArgumentsThrow) {
  util::Rng rng(21);
  EXPECT_THROW(path(0), std::invalid_argument);
  EXPECT_THROW(cycle(2), std::invalid_argument);
  EXPECT_THROW(grid(0, 3), std::invalid_argument);
  EXPECT_THROW(torus(2, 5), std::invalid_argument);
  EXPECT_THROW(hypercube(0), std::invalid_argument);
  EXPECT_THROW(random_geometric(10, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(random_regularish(10, 3, rng), std::invalid_argument);
  EXPECT_THROW(diameter_controlled(10, 2), std::invalid_argument);
}

// Every family the experiments use must be connected across seeds — the
// radio model requires it for global propagation.
class GeneratorConnectivity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorConnectivity, AllFamiliesConnected) {
  util::Rng rng(GetParam());
  EXPECT_TRUE(is_connected(gnp(200, 0.015, rng)));
  EXPECT_TRUE(is_connected(random_geometric(200, 0.09, rng)));
  EXPECT_TRUE(is_connected(random_recursive_tree(200, rng)));
  EXPECT_TRUE(is_connected(random_regularish(200, 4, rng)));
  EXPECT_TRUE(is_connected(necklace(5, 40, 4, rng)));
  EXPECT_TRUE(is_connected(barabasi_albert(200, 2, rng)));
  EXPECT_TRUE(is_connected(chung_lu(200, 2.5, 8.0, rng)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorConnectivity,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace radiocast::graph
