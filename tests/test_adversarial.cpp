// Adversarial / stress cases: topologies engineered to poke at known
// failure modes (bottlenecks, symmetric collisions, dense hubs, wrong
// diameter hints) across the whole algorithm stack.
#include <gtest/gtest.h>

#include "baselines/decay_broadcast.hpp"
#include "core/radiocast.hpp"

namespace radiocast {
namespace {

TEST(Adversarial, BarbellBottleneck) {
  // Two dense cliques joined by one long thin path: everything must funnel
  // through two bridge nodes; clusters straddle the bridge.
  const graph::Graph g = graph::barbell(40, 30);
  const auto d = graph::diameter_exact(g);
  const auto r = core::broadcast(g, d, 0, 7, core::CompeteParams{}, 1);
  EXPECT_TRUE(r.success);
  const auto le = core::elect_leader(g, d, core::LeaderElectionParams{}, 1);
  EXPECT_TRUE(le.success);
}

TEST(Adversarial, LollipopSourceInClique) {
  const graph::Graph g = graph::lollipop(60, 80);
  const auto d = graph::diameter_exact(g);
  // Source in the dense part, must escape through one cut vertex.
  const auto r = core::broadcast(g, d, 3, 7, core::CompeteParams{}, 2);
  EXPECT_TRUE(r.success);
  // And from the far tip back into the clique.
  const auto r2 = core::broadcast(g, d, g.node_count() - 1, 7,
                                  core::CompeteParams{}, 3);
  EXPECT_TRUE(r2.success);
}

TEST(Adversarial, StarHubCongestion) {
  // Extreme congestion: n-1 leaves all adjacent to one hub. Sources on
  // two leaves: their transmissions collide at the hub until Decay breaks
  // the tie.
  const graph::Graph g = graph::star(500);
  const auto r = core::compete(g, 2, {{1, 5}, {2, 9}},
                               core::CompeteParams{}, 4);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.winner, 9u);
}

TEST(Adversarial, PerfectSymmetryBroken) {
  // A torus is vertex-transitive: no structural asymmetry to exploit;
  // leader election must still break symmetry via randomness alone.
  const graph::Graph g = graph::torus(12, 12);
  const auto le = core::elect_leader(g, 12, core::LeaderElectionParams{}, 5);
  EXPECT_TRUE(le.success);
}

TEST(Adversarial, DiameterHintTooSmall) {
  // Nodes believing D is smaller than reality curtail too aggressively;
  // the round budget derives from the hint. The run may fail — what we
  // assert is NO crash and an honest failure report.
  const graph::Graph g = graph::path(300);
  const auto r = core::broadcast(g, /*lying hint=*/8, 0, 7,
                                 core::CompeteParams{}, 6);
  EXPECT_EQ(r.informed <= g.node_count(), true);
  if (!r.success) {
    EXPECT_LT(r.informed, g.node_count());
  }
}

TEST(Adversarial, DiameterHintTooLargeStillCorrect) {
  const graph::Graph g = graph::grid(8, 8);
  const auto r = core::broadcast(g, 14 * 8, 0, 7, core::CompeteParams{}, 7);
  EXPECT_TRUE(r.success);
}

TEST(Adversarial, TwoCompetingSourcesAtAntipodes) {
  const graph::Graph g = graph::cycle(200);
  const auto r = core::compete(g, 100, {{0, 10}, {100, 20}},
                               core::CompeteParams{}, 8);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.winner, 20u);
  for (auto b : r.best) EXPECT_EQ(b, 20u);
}

TEST(Adversarial, CaterpillarManyLeaves) {
  // Leaves outnumber the spine 6:1; every leaf is a risky dead-end.
  const graph::Graph g = graph::caterpillar(40, 6);
  const auto d = graph::diameter_exact(g);
  const auto r = core::broadcast(g, d, g.node_count() - 1, 7,
                                 core::CompeteParams{}, 9);
  EXPECT_TRUE(r.success);
}

TEST(Adversarial, DecayBaselineOnStarVsCliquePath) {
  // The CR shallow cycle is tuned for congestion n/D; the star violates
  // that assumption maximally — its periodic full-depth cycles must save
  // it (regression guard for the preset).
  const graph::Graph star = graph::star(1000);
  const auto r = baselines::decay_broadcast(
      star, 2, {{5, 7}}, baselines::cr_params(1000, 2), 10);
  EXPECT_TRUE(r.success);
}

TEST(Adversarial, HypercubeAllAlgorithmsAgree) {
  const graph::Graph g = graph::hypercube(8);  // 256 nodes, D=8
  const auto cd = core::broadcast(g, 8, 0, 7, core::CompeteParams{}, 11);
  const auto bgi = baselines::decay_broadcast(
      g, 8, {{0, 7}}, baselines::bgi_params(g.node_count()), 11);
  EXPECT_TRUE(cd.success);
  EXPECT_TRUE(bgi.success);
}

// Cross-validation fuzz: for random small graphs, the pipelined-schedule
// Compete and the fully-physical colored-schedule Compete must both
// deliver the same winner to everyone (the fidelity-note-2 equivalence).
class ModeEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModeEquivalence, PipelinedAndColoredAgree) {
  util::Rng rng(GetParam());
  const graph::Graph g = graph::gnp(120, 0.04, rng);
  const auto d = std::max(2u, graph::diameter_double_sweep(g));
  std::vector<core::CompeteSource> sources{
      {static_cast<graph::NodeId>(rng.uniform(g.node_count())), 31},
      {static_cast<graph::NodeId>(rng.uniform(g.node_count())), 17}};
  core::CompeteParams pipelined;
  core::CompeteParams colored;
  colored.mode = schedule::ScheduleMode::kColored;
  const auto a = core::compete(g, d, sources, pipelined, GetParam());
  const auto b = core::compete(g, d, sources, colored, GetParam());
  EXPECT_TRUE(a.success);
  EXPECT_TRUE(b.success);
  EXPECT_EQ(a.winner, b.winner);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModeEquivalence,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

}  // namespace
}  // namespace radiocast
