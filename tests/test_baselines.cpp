#include "baselines/decay_broadcast.hpp"
#include "baselines/hw_broadcast.hpp"
#include "baselines/le_binary_search.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace radiocast::baselines {
namespace {

TEST(BgiBroadcast, InformsPath) {
  const graph::Graph g = graph::path(100);
  const auto r =
      decay_broadcast(g, 99, {{0, 5}}, bgi_params(g.node_count()), 1);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.informed, 100u);
}

TEST(BgiBroadcast, InformsDenseGraph) {
  util::Rng rng(2);
  const graph::Graph g = graph::gnp(300, 0.05, rng);
  const auto d = graph::diameter_double_sweep(g);
  const auto r =
      decay_broadcast(g, d, {{0, 5}}, bgi_params(g.node_count()), 2);
  EXPECT_TRUE(r.success);
}

TEST(BgiBroadcast, RoundsScaleLikeDLogN) {
  // On a path, BGI costs ~ c * D * log n; check the per-hop rate is within
  // a small factor of log2 n.
  const graph::Graph g = graph::path(300);
  const auto r =
      decay_broadcast(g, 299, {{0, 1}}, bgi_params(g.node_count()), 3);
  ASSERT_TRUE(r.success);
  const double per_hop = static_cast<double>(r.rounds) / 299.0;
  const double logn = std::log2(300.0);
  EXPECT_GT(per_hop, 0.5 * logn);
  EXPECT_LT(per_hop, 4.0 * logn);
}

TEST(CrBroadcast, FasterThanBgiOnLongCliquePath) {
  // n/D small => CR's shallow cycles beat BGI's full-depth cycles.
  const graph::Graph g = graph::path_of_cliques(60, 4);
  const auto d = graph::diameter_double_sweep(g);
  const auto bgi =
      decay_broadcast(g, d, {{0, 9}}, bgi_params(g.node_count()), 4);
  const auto cr =
      decay_broadcast(g, d, {{0, 9}}, cr_params(g.node_count(), d), 4);
  ASSERT_TRUE(bgi.success);
  ASSERT_TRUE(cr.success);
  EXPECT_LT(cr.rounds, bgi.rounds);
}

TEST(CrBroadcast, HandlesHighCongestionViaFullCycles) {
  // Star-heavy topology: per-node congestion n-1 >> n/D; the periodic
  // full-depth cycle must still get the message out of the hub.
  const graph::Graph g = graph::star(400);
  const auto r = decay_broadcast(g, 2, {{1, 9}},
                                 cr_params(g.node_count(), 2), 5);
  EXPECT_TRUE(r.success);
}

TEST(DecayBroadcast, MultiSourceHighestWins) {
  const graph::Graph g = graph::grid(10, 10);
  const auto r = decay_broadcast(
      g, 18, {{0, 3}, {55, 12}, {99, 7}}, bgi_params(g.node_count()), 6);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.winner, 12u);
  for (auto b : r.best) EXPECT_EQ(b, 12u);
}

TEST(DecayBroadcast, EmptySourcesVacuous) {
  const graph::Graph g = graph::path(5);
  const auto r = decay_broadcast(g, 4, {}, bgi_params(5), 7);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.rounds, 0u);
}

TEST(DecayBroadcast, SourceOutOfRangeThrows) {
  const graph::Graph g = graph::path(5);
  EXPECT_THROW(decay_broadcast(g, 4, {{9, 1}}, bgi_params(5), 8),
               std::out_of_range);
}

TEST(DecayBroadcast, MaxRoundsRespected) {
  const graph::Graph g = graph::path(500);
  DecayBroadcastParams p = bgi_params(500);
  p.max_rounds = 50;  // far too few for 500 hops
  const auto r = decay_broadcast(g, 499, {{0, 1}}, p, 9);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.rounds, 50u);
  EXPECT_LT(r.informed, 500u);
}

TEST(HwBroadcast, CompletesAndUsesInflatedCurtail) {
  const graph::Graph g = graph::path_of_cliques(15, 6);
  const auto d = graph::diameter_double_sweep(g);
  const auto r = hw_broadcast(g, d, 0, 5, 10);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(hw_params().hw_curtail);
}

TEST(BinarySearchLe, ElectsUniqueLeaderOnGrid) {
  const graph::Graph g = graph::grid(10, 10);
  const auto r = binary_search_leader_election(g, 18,
                                               BinarySearchLeParams{}, 11);
  ASSERT_TRUE(r.success);
  EXPECT_LT(r.leader, g.node_count());
  EXPECT_GT(r.candidate_count, 0u);
  EXPECT_GT(r.phases, 0u);
}

TEST(BinarySearchLe, RoundsAreTbcTimesBits) {
  const graph::Graph g = graph::grid(8, 8);
  BinarySearchLeParams p;
  p.id_bits = 10;
  const auto r = binary_search_leader_election(g, 14, p, 12);
  ASSERT_TRUE(r.success);
  // phases * budget + final announce = (bits + 1) * budget.
  EXPECT_EQ(r.phases, 10u);
  EXPECT_EQ(r.rounds % (r.phases + 1), 0u);
}

TEST(BinarySearchLe, DeterministicGivenSeed) {
  const graph::Graph g = graph::cycle(40);
  const auto a =
      binary_search_leader_election(g, 20, BinarySearchLeParams{}, 13);
  const auto b =
      binary_search_leader_election(g, 20, BinarySearchLeParams{}, 13);
  EXPECT_EQ(a.leader, b.leader);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(BinarySearchLe, WorksAcrossFamilies) {
  util::Rng rng(14);
  for (int fam = 0; fam < 3; ++fam) {
    graph::Graph g;
    switch (fam) {
      case 0: g = graph::path(60); break;
      case 1: g = graph::random_geometric(150, 0.12, rng); break;
      default: g = graph::balanced_binary_tree(63); break;
    }
    const auto d = std::max(2u, graph::diameter_double_sweep(g));
    const auto r =
        binary_search_leader_election(g, d, BinarySearchLeParams{}, fam);
    EXPECT_TRUE(r.success) << "family " << fam;
  }
}

}  // namespace
}  // namespace radiocast::baselines
