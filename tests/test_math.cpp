#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace radiocast::util {
namespace {

TEST(Math, Ilog2) {
  EXPECT_EQ(ilog2(0), 0u);
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(4), 2u);
  EXPECT_EQ(ilog2(1023), 9u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_EQ(ilog2(std::uint64_t{1} << 63), 63u);
}

TEST(Math, Clog2) {
  EXPECT_EQ(clog2(0), 0u);
  EXPECT_EQ(clog2(1), 0u);
  EXPECT_EQ(clog2(2), 1u);
  EXPECT_EQ(clog2(3), 2u);
  EXPECT_EQ(clog2(4), 2u);
  EXPECT_EQ(clog2(5), 3u);
  EXPECT_EQ(clog2(1024), 10u);
  EXPECT_EQ(clog2(1025), 11u);
}

TEST(Math, SafeLogClampsBelow) {
  EXPECT_DOUBLE_EQ(safe_log(0.0), 1.0);
  EXPECT_DOUBLE_EQ(safe_log(1.0), 1.0);
  EXPECT_NEAR(safe_log(100.0), std::log(100.0), 1e-12);
}

TEST(Math, SafeLog2ClampsBelow) {
  EXPECT_DOUBLE_EQ(safe_log2(0.5), 1.0);
  EXPECT_DOUBLE_EQ(safe_log2(2.0), 1.0);
  EXPECT_NEAR(safe_log2(1024.0), 10.0, 1e-12);
}

TEST(Math, Fpow) {
  EXPECT_NEAR(fpow(4.0, 0.5), 2.0, 1e-12);
  EXPECT_NEAR(fpow(1000.0, -0.5), 1.0 / std::sqrt(1000.0), 1e-12);
  EXPECT_DOUBLE_EQ(fpow(0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(fpow(-3.0, 2.0), 0.0);  // defensive: negative base
  EXPECT_NEAR(fpow(1024.0, 0.125), std::pow(1024.0, 0.125), 1e-9);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2u);
  EXPECT_EQ(ceil_div(11, 5), 3u);
  EXPECT_EQ(ceil_div(1, 100), 1u);
  EXPECT_EQ(ceil_div(0, 3), 0u);
}

TEST(Math, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(Math, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

TEST(Math, LogRatioMatchesPaperQuantity) {
  // log n / log D, the paper's per-hop rate.
  EXPECT_NEAR(log_ratio(1 << 20, 1 << 10), 2.0, 1e-12);
  EXPECT_NEAR(log_ratio(1024, 1024), 1.0, 1e-12);
}

TEST(Math, LogRatioDegradesGracefully) {
  // Tiny inputs clamp logs at 1 instead of dividing by ~zero.
  EXPECT_GT(log_ratio(10, 1), 0.0);
  EXPECT_LE(log_ratio(2, 2), std::log2(4.0));
}

}  // namespace
}  // namespace radiocast::util
