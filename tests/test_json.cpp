// util::Json: the one JSON implementation behind bench_out emission and
// sweep manifests. The properties that matter downstream: insertion-
// ordered object keys (stable, diffable files), round-trip parse/dump,
// integral doubles rendered without a decimal point, and loud errors on
// malformed documents.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace radiocast::util {
namespace {

TEST(Json, ScalarsDump) {
  EXPECT_EQ(Json().dump(-1), "null");
  EXPECT_EQ(Json(true).dump(-1), "true");
  EXPECT_EQ(Json(false).dump(-1), "false");
  EXPECT_EQ(Json(42).dump(-1), "42");
  EXPECT_EQ(Json(42.0).dump(-1), "42");  // integral double -> integer form
  EXPECT_EQ(Json(0.5).dump(-1), "0.5");
  EXPECT_EQ(Json("hi").dump(-1), "\"hi\"");
  EXPECT_EQ(Json(std::nan("")).dump(-1), "null");  // JSON has no NaN
}

TEST(Json, ObjectKeepsInsertionOrder) {
  Json j = Json::object();
  j.set("zeta", 1).set("alpha", 2).set("mid", 3);
  EXPECT_EQ(j.dump(-1), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
  // Re-setting an existing key replaces in place, keeping its position.
  j.set("alpha", 9);
  EXPECT_EQ(j.dump(-1), "{\"zeta\":1,\"alpha\":9,\"mid\":3}");
}

TEST(Json, FindAndAccessors) {
  Json j = Json::object();
  j.set("s", "text").set("n", 2.5).set("b", true);
  ASSERT_NE(j.find("s"), nullptr);
  EXPECT_EQ(j.find("s")->as_string(), "text");
  EXPECT_DOUBLE_EQ(j.find("n")->as_number(), 2.5);
  EXPECT_TRUE(j.find("b")->as_bool());
  EXPECT_EQ(j.find("missing"), nullptr);
  EXPECT_THROW(j.find("s")->as_number(), std::invalid_argument);
}

TEST(Json, StringEscaping) {
  Json j = Json(std::string("a\"b\\c\nd"));
  EXPECT_EQ(j.dump(-1), "\"a\\\"b\\\\c\\nd\"");
  const Json back = Json::parse(j.dump(-1));
  EXPECT_EQ(back.as_string(), "a\"b\\c\nd");
}

TEST(Json, ParseDocument) {
  const Json j = Json::parse(R"({
    "version": 1,
    "axes": {"n": [512, 1024], "p": "geom:0.001..0.1:5"},
    "flag": true,
    "nothing": null
  })");
  ASSERT_TRUE(j.is_object());
  EXPECT_DOUBLE_EQ(j.find("version")->as_number(), 1.0);
  const Json* axes = j.find("axes");
  ASSERT_NE(axes, nullptr);
  ASSERT_EQ(axes->find("n")->size(), 2u);
  EXPECT_DOUBLE_EQ(axes->find("n")->at(1).as_number(), 1024.0);
  EXPECT_EQ(axes->find("p")->as_string(), "geom:0.001..0.1:5");
  EXPECT_TRUE(j.find("nothing")->is_null());
}

TEST(Json, RoundTripPreservesStructure) {
  Json j = Json::object();
  j.set("list", Json::array().push_back(1).push_back("two").push_back(false));
  j.set("nested", Json::object().set("x", 1e-3));
  const Json back = Json::parse(j.dump(2));
  EXPECT_EQ(back.dump(-1), j.dump(-1));
}

TEST(Json, ParseErrorsNameTheOffset) {
  EXPECT_THROW(Json::parse(""), std::invalid_argument);
  EXPECT_THROW(Json::parse("{"), std::invalid_argument);
  EXPECT_THROW(Json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW(Json::parse("tru"), std::invalid_argument);
  EXPECT_THROW(Json::parse("1 2"), std::invalid_argument);  // trailing junk
  try {
    Json::parse("[1, oops]");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(Json, BuildersRejectTypeMisuse) {
  Json arr = Json::array();
  EXPECT_THROW(arr.set("k", 1), std::invalid_argument);
  Json obj = Json::object();
  EXPECT_THROW(obj.push_back(1), std::invalid_argument);
}

}  // namespace
}  // namespace radiocast::util
