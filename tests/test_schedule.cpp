// TreeSchedule: tree structure extraction and the conflict-free colouring
// that realises Lemma 2.3's collision-free intra-cluster schedule.
#include "schedule/bfs_schedule.hpp"

#include <gtest/gtest.h>

#include "cluster/partition_stats.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace radiocast::schedule {
namespace {

using cluster::Partition;
using cluster::partition;

TEST(TreeSchedule, ChildrenMirrorParents) {
  util::Rng rng(1);
  const graph::Graph g = graph::grid(12, 12);
  const Partition p = partition(g, 0.25, rng);
  const TreeSchedule s(g, p, ScheduleMode::kPipelined);
  std::size_t child_links = 0;
  for (graph::NodeId u = 0; u < g.node_count(); ++u) {
    for (graph::NodeId v : s.children(u)) {
      EXPECT_EQ(s.parent(v), u);
      ++child_links;
    }
  }
  // Every non-centre node is someone's child exactly once.
  std::size_t non_centers = 0;
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    if (p.in_scope(v) && !p.is_center(v)) ++non_centers;
  }
  EXPECT_EQ(child_links, non_centers);
}

TEST(TreeSchedule, PipelinedPeriodIsOne) {
  util::Rng rng(2);
  const graph::Graph g = graph::cycle(20);
  const Partition p = partition(g, 0.3, rng);
  const TreeSchedule s(g, p, ScheduleMode::kPipelined);
  EXPECT_EQ(s.period(), 1u);
  EXPECT_EQ(s.rounds_for_distance(7), 7u);
}

TEST(TreeSchedule, MaxDepthMatchesPartition) {
  util::Rng rng(3);
  const graph::Graph g = graph::grid(15, 15);
  const Partition p = partition(g, 0.15, rng);
  const TreeSchedule s(g, p, ScheduleMode::kPipelined);
  std::uint32_t expect = 0;
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    expect = std::max(expect, p.dist_to_center[v]);
  }
  EXPECT_EQ(s.max_depth(), expect);
}

// The colouring invariant: two same-cluster nodes sharing a colour must not
// interfere — neither may be adjacent to a tree-child of the other.
class ColoringProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ColoringProperty, NoSameColorConflicts) {
  util::Rng rng(GetParam());
  const graph::Graph g = graph::random_geometric(250, 0.1, rng);
  const Partition p = partition(g, 0.3, rng);
  const TreeSchedule s(g, p, ScheduleMode::kColored);
  EXPECT_GE(s.period(), 1u);
  for (graph::NodeId u = 0; u < g.node_count(); ++u) {
    if (!p.in_scope(u)) continue;
    for (graph::NodeId v : s.children(u)) {
      // No same-cluster node w != u with colour(u) may be adjacent to v.
      for (graph::NodeId w : g.neighbors(v)) {
        if (w == u || p.center[w] != p.center[u]) continue;
        EXPECT_NE(s.color(w), s.color(u))
            << "transmitters " << u << " and " << w
            << " share colour but both reach child " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColoringProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(TreeSchedule, ColoringPeriodReasonableOnBoundedDegree) {
  // On a grid (degree <= 4) the 2-hop conflict degree is small; greedy
  // colouring must not blow up.
  util::Rng rng(9);
  const graph::Graph g = graph::grid(20, 20);
  const Partition p = partition(g, 0.2, rng);
  const TreeSchedule s(g, p, ScheduleMode::kColored);
  EXPECT_LE(s.period(), 16u);
}

TEST(TreeSchedule, SingletonClustersTrivial) {
  // beta huge -> singleton clusters: no children, colour 0 everywhere.
  util::Rng rng(10);
  const graph::Graph g = graph::cycle(12);
  const Partition p = partition(g, 100.0, rng);
  const TreeSchedule s(g, p, ScheduleMode::kColored);
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    if (p.is_center(v)) {
      EXPECT_TRUE(s.children(v).empty() || true);
    }
  }
  EXPECT_GE(s.period(), 1u);
}

TEST(TreeSchedule, AccessorsDelegateToPartition) {
  util::Rng rng(11);
  const graph::Graph g = graph::path(8);
  const Partition p = partition(g, 0.4, rng);
  const TreeSchedule s(g, p, ScheduleMode::kPipelined);
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(s.depth(v), p.dist_to_center[v]);
    EXPECT_EQ(s.parent(v), p.parent[v]);
    EXPECT_EQ(s.center(v), p.center[v]);
    EXPECT_TRUE(s.in_scope(v));
  }
}

}  // namespace
}  // namespace radiocast::schedule
