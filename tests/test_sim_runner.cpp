// The sim layer's contracts: scenario registration/dispatch, and the
// Runner's central promise — results are byte-identical for any thread
// count, because replications are merged in replication order.
#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "sim/instances.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace radiocast::sim {
namespace {

// ----------------------------------------------------------- registry

TEST(ScenarioRegistry, RegistersAndFinds) {
  ScenarioRegistry reg;
  reg.add({"alpha", "first", [](ScenarioContext&) {}});
  reg.add({"beta", "second", [](ScenarioContext&) {}});
  ASSERT_EQ(reg.size(), 2u);
  ASSERT_NE(reg.find("alpha"), nullptr);
  EXPECT_EQ(reg.find("alpha")->description, "first");
  EXPECT_EQ(reg.find("missing"), nullptr);
}

TEST(ScenarioRegistry, ListIsNameSorted) {
  ScenarioRegistry reg;
  reg.add({"zeta", "", [](ScenarioContext&) {}});
  reg.add({"alpha", "", [](ScenarioContext&) {}});
  reg.add({"mid", "", [](ScenarioContext&) {}});
  const auto scenarios = reg.list();
  ASSERT_EQ(scenarios.size(), 3u);
  EXPECT_EQ(scenarios[0]->name, "alpha");
  EXPECT_EQ(scenarios[1]->name, "mid");
  EXPECT_EQ(scenarios[2]->name, "zeta");
}

TEST(ScenarioRegistry, RejectsDuplicatesAndInvalid) {
  ScenarioRegistry reg;
  reg.add({"dup", "", [](ScenarioContext&) {}});
  EXPECT_THROW(reg.add({"dup", "", [](ScenarioContext&) {}}),
               std::invalid_argument);
  EXPECT_THROW(reg.add({"", "", [](ScenarioContext&) {}}),
               std::invalid_argument);
  EXPECT_THROW(reg.add({"norun", "", nullptr}), std::invalid_argument);
}

TEST(ScenarioRegistry, UnknownScenarioErrorNamesKnownOnes) {
  ScenarioRegistry reg;
  reg.add({"known", "", [](ScenarioContext&) {}});
  util::Cli cli(0, nullptr);
  Runner runner(1);
  ScenarioContext ctx(cli, runner);
  try {
    reg.run("nope", ctx);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nope"), std::string::npos);
    EXPECT_NE(msg.find("known"), std::string::npos);
  }
}

TEST(ScenarioRegistry, RunDispatchesWithContext) {
  ScenarioRegistry reg;
  reg.add({"emit", "", [](ScenarioContext& ctx) {
             util::Table t({"x"});
             t.row().add(std::uint64_t{42});
             ctx.emit(t, "the title", "unused");
             ctx.note("the note");
           }});
  const char* argv[] = {"prog", "emit"};
  util::Cli cli(2, argv);
  Runner runner(1);
  ScenarioContext ctx(cli, runner);
  std::ostringstream captured;
  ctx.out = &captured;
  ctx.out_dir.clear();  // CSV off
  reg.run(cli.subcommand(), ctx);
  EXPECT_NE(captured.str().find("the title"), std::string::npos);
  EXPECT_NE(captured.str().find("42"), std::string::npos);
  EXPECT_NE(captured.str().find("the note"), std::string::npos);
}

TEST(ScenarioRegistry, GlobalHoldsTheBenchScenarios) {
  // The driver's scenarios live in bench/ (linked into radiocast_bench,
  // not into this test), so global() here only checks the singleton works.
  ScenarioRegistry& g1 = ScenarioRegistry::global();
  ScenarioRegistry& g2 = ScenarioRegistry::global();
  EXPECT_EQ(&g1, &g2);
}

// ------------------------------------------------------------- runner

TEST(Runner, MapPreservesIndexOrder) {
  Runner runner(4);
  const auto out = runner.map(37, [](int i) { return i * i; });
  ASSERT_EQ(out.size(), 37u);
  for (int i = 0; i < 37; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
}

TEST(Runner, MapHandlesZeroAndNegativeCounts) {
  Runner runner(4);
  EXPECT_TRUE(runner.map(0, [](int i) { return i; }).empty());
  EXPECT_TRUE(runner.map(-3, [](int i) { return i; }).empty());
}

TEST(Runner, MapPropagatesExceptions) {
  Runner runner(4);
  EXPECT_THROW(runner.map(8,
                          [](int i) -> int {
                            if (i == 5) throw std::runtime_error("boom");
                            return i;
                          }),
               std::runtime_error);
}

TEST(Runner, ReplicateSkipsNaNMetrics) {
  Runner runner(1);
  const auto stats = runner.replicate(
      4, /*base_seed=*/7, 2, [](int rep, std::uint64_t) {
        // Metric 0 present every rep; metric 1 only on even reps.
        return std::vector<double>{
            static_cast<double>(rep),
            rep % 2 == 0 ? static_cast<double>(rep) : std::nan("")};
      });
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].count(), 4u);
  EXPECT_DOUBLE_EQ(stats[0].mean(), 1.5);
  EXPECT_EQ(stats[1].count(), 2u);
  EXPECT_DOUBLE_EQ(stats[1].mean(), 1.0);
}

TEST(Runner, ReplicateRejectsWrongMetricCount) {
  Runner runner(1);
  EXPECT_THROW(runner.replicate(2, 7, 3,
                                [](int, std::uint64_t) {
                                  return std::vector<double>{1.0};
                                }),
               std::logic_error);
}

/// The core determinism contract: a replication body that derives all of
/// its randomness from the provided seed yields IDENTICAL merged stats —
/// and therefore identical rendered tables — for any thread count.
TEST(Runner, ThreadCountDoesNotChangeResults) {
  auto run_with = [](int threads) {
    Runner runner(threads);
    const auto stats = runner.replicate(
        16, /*base_seed=*/123, 2, [](int, std::uint64_t seed) {
          util::Rng rng(seed);
          double acc = 0.0;
          for (int i = 0; i < 100; ++i) acc += rng.uniform_real();
          return std::vector<double>{acc, rng.uniform_real()};
        });
    util::Table t({"metric", "mean", "stddev", "min", "max"});
    for (std::size_t m = 0; m < stats.size(); ++m) {
      t.row()
          .add(std::uint64_t{m})
          .add(stats[m].mean(), 9)
          .add(stats[m].stddev(), 9)
          .add(stats[m].min(), 9)
          .add(stats[m].max(), 9);
    }
    return t.to_string();
  };
  const std::string table1 = run_with(1);
  EXPECT_EQ(table1, run_with(2));
  EXPECT_EQ(table1, run_with(4));
  EXPECT_EQ(table1, run_with(16));
}

TEST(Runner, ThreadsClampedToAtLeastOne) {
  Runner runner(0);
  EXPECT_EQ(runner.threads(), 1);
  Runner runner_neg(-5);
  EXPECT_EQ(runner_neg.threads(), 1);
}

// ---------------------------------------------------------- instances

TEST(Instances, CliquepathMatchesRequestedSize) {
  const Instance inst = make_cliquepath_instance(512, 48);
  EXPECT_EQ(inst.g.node_count(), 512u);
  EXPECT_GT(inst.diameter, 0u);
  EXPECT_NE(inst.name.find("cliquepath"), std::string::npos);
}

TEST(Instances, GridDiameterIsExact) {
  const Instance inst = make_grid_instance(6, 9);
  EXPECT_EQ(inst.g.node_count(), 54u);
  EXPECT_EQ(inst.diameter, 13u);
}

}  // namespace
}  // namespace radiocast::sim
