// End-to-end tests of Compete(S) — Theorem 4.1's guarantee (everyone
// learns the highest source message) across graph families, source-set
// sizes, seeds, and ablation configurations.
#include "core/compete.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace radiocast::core {
namespace {

CompeteParams fast_params() {
  CompeteParams p;
  p.check_interval = 8;
  return p;
}

TEST(Compete, EmptySourceSetIsVacuousSuccess) {
  const graph::Graph g = graph::path(5);
  const auto r = compete(g, 4, {}, fast_params(), 1);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.rounds, 0u);
}

TEST(Compete, SingleNodeGraph) {
  const graph::Graph g = graph::path(1);
  const auto r = compete(g, 1, {{0, 42}}, fast_params(), 1);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.winner, 42u);
  EXPECT_EQ(r.informed, 1u);
}

TEST(Compete, TwoNodes) {
  const graph::Graph g = graph::path(2);
  const auto r = compete(g, 1, {{0, 7}}, fast_params(), 2);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.best[1], 7u);
}

TEST(Compete, HighestOfManySourcesWins) {
  const graph::Graph g = graph::grid(12, 12);
  std::vector<CompeteSource> sources{{0, 10}, {77, 99}, {143, 50}};
  const auto r = compete(g, 22, sources, fast_params(), 3);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.winner, 99u);
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(r.best[v], 99u) << v;
  }
}

TEST(Compete, DuplicateSourceValuesAllowed) {
  const graph::Graph g = graph::cycle(20);
  std::vector<CompeteSource> sources{{0, 5}, {10, 5}};
  const auto r = compete(g, 10, sources, fast_params(), 4);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.winner, 5u);
}

TEST(Compete, SourceOutOfRangeThrows) {
  const graph::Graph g = graph::path(3);
  EXPECT_THROW(compete(g, 2, {{5, 1}}, fast_params(), 1),
               std::out_of_range);
}

TEST(Compete, AllNodesAreSources) {
  const graph::Graph g = graph::grid(8, 8);
  std::vector<CompeteSource> sources;
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    sources.push_back({v, static_cast<radio::Payload>(v)});
  }
  const auto r = compete(g, 14, sources, fast_params(), 5);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.winner, 63u);
}

TEST(Compete, DeterministicGivenSeed) {
  const graph::Graph g = graph::path_of_cliques(10, 6);
  const auto a = compete(g, 28, {{3, 9}}, fast_params(), 77);
  const auto b = compete(g, 28, {{3, 9}}, fast_params(), 77);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.best, b.best);
}

TEST(Compete, DifferentSeedsBothSucceed) {
  const graph::Graph g = graph::path_of_cliques(10, 6);
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    EXPECT_TRUE(compete(g, 28, {{0, 1}}, fast_params(), seed).success)
        << seed;
  }
}

TEST(Compete, ChargedPrecomputeIsPositive) {
  const graph::Graph g = graph::grid(10, 10);
  const auto r = compete(g, 18, {{0, 1}}, fast_params(), 6);
  EXPECT_GT(r.precompute_rounds_charged, 0u);
}

TEST(Compete, StatsReflectActivity) {
  const graph::Graph g = graph::path_of_cliques(15, 6);
  const auto r = compete(g, 44, {{0, 1}}, fast_params(), 7);
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.main_stats.windows_started, 0u);
  EXPECT_GT(r.main_stats.wave_deliveries, 0u);
  EXPECT_GT(r.main_stats.background_rounds, 0u);
  EXPECT_GT(r.background_stats.windows_started, 0u);
}

// Ablations (E9): every configuration must still complete — the paper's
// background processes affect speed, not eventual correctness, because the
// main waves alone also make progress (just not provably fast progress).
TEST(Compete, AblationNoBackgroundProcessStillCompletes) {
  const graph::Graph g = graph::grid(10, 10);
  CompeteParams p = fast_params();
  p.enable_background = false;
  const auto r = compete(g, 18, {{0, 8}}, p, 8);
  EXPECT_TRUE(r.success);
}

TEST(Compete, AblationNoIcpBackgroundStillCompletesOnGrid) {
  const graph::Graph g = graph::grid(10, 10);
  CompeteParams p = fast_params();
  p.enable_icp_background = false;
  const auto r = compete(g, 18, {{0, 8}}, p, 9);
  EXPECT_TRUE(r.success);
}

TEST(Compete, AblationFixedBetaStillCompletes) {
  const graph::Graph g = graph::grid(10, 10);
  CompeteParams p = fast_params();
  p.randomize_beta = false;
  const auto r = compete(g, 18, {{0, 8}}, p, 10);
  EXPECT_TRUE(r.success);
}

TEST(Compete, HwCurtailStillCompletes) {
  const graph::Graph g = graph::grid(10, 10);
  CompeteParams p = fast_params();
  p.hw_curtail = true;
  const auto r = compete(g, 18, {{0, 8}}, p, 11);
  EXPECT_TRUE(r.success);
}

TEST(Compete, ColoredScheduleModeCompletes) {
  const graph::Graph g = graph::grid(8, 8);
  CompeteParams p = fast_params();
  p.mode = schedule::ScheduleMode::kColored;
  const auto r = compete(g, 14, {{0, 8}}, p, 12);
  EXPECT_TRUE(r.success);
}

TEST(Compete, RoundBudgetRespected) {
  const graph::Graph g = graph::path(200);
  CompeteParams p = fast_params();
  p.round_budget_factor = 0.0001;  // absurdly small: must stop early
  const auto r = compete(g, 199, {{0, 1}}, p, 13);
  EXPECT_FALSE(r.success);
  EXPECT_LT(r.rounds, 1000u);
}

// Families x seeds sweep: Theorem 4.1 correctness everywhere.
class CompeteFamilies
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(CompeteFamilies, AllInformed) {
  const auto [fam, seed] = GetParam();
  util::Rng rng(seed * 1000 + fam);
  graph::Graph g;
  switch (fam) {
    case 0: g = graph::path(150); break;
    case 1: g = graph::cycle(150); break;
    case 2: g = graph::grid(12, 13); break;
    case 3: g = graph::path_of_cliques(20, 8); break;
    case 4: g = graph::random_geometric(250, 0.09, rng); break;
    case 5: g = graph::gnp(250, 0.025, rng); break;
    case 6: g = graph::random_recursive_tree(250, rng); break;
    case 7: g = graph::star(100); break;
    case 8: g = graph::caterpillar(30, 4); break;
    default: g = graph::hypercube(7); break;
  }
  const auto d = graph::diameter_double_sweep(g);
  std::vector<CompeteSource> sources{
      {0, 3}, {static_cast<graph::NodeId>(g.node_count() / 2), 11}};
  const auto r = compete(g, std::max(2u, d), sources, fast_params(), seed);
  EXPECT_TRUE(r.success) << "family " << fam << " seed " << seed << ": "
                         << r.informed << "/" << g.node_count();
  EXPECT_EQ(r.winner, 11u);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesSeeds, CompeteFamilies,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace radiocast::core
