#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace radiocast::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  std::uint64_t x = 0;
  for (int i = 0; i < 10; ++i) x |= r();
  EXPECT_NE(x, 0u);
}

TEST(Rng, UniformRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.uniform(bound), bound);
  }
}

TEST(Rng, UniformBoundOneAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.uniform(1), 0u);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng r(11);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[r.uniform(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));
  }
}

TEST(Rng, UniformInInclusiveRange) {
  Rng r(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto x = r.uniform_in(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng r(17);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRealMeanIsHalf) {
  Rng r(19);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.uniform_real();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-1.0));
    EXPECT_TRUE(r.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r(29);
  int heads = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) heads += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / kN, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  // This is the delta_v distribution of Partition(beta): mean must be
  // 1/beta for Lemma 2.1's radius bound to hold.
  Rng r(31);
  for (double beta : {0.1, 0.5, 1.0, 4.0}) {
    double sum = 0;
    constexpr int kN = 200000;
    for (int i = 0; i < kN; ++i) sum += r.exponential(beta);
    EXPECT_NEAR(sum / kN, 1.0 / beta, 0.05 / beta)
        << "beta = " << beta;
  }
}

TEST(Rng, ExponentialCdfAtMedian) {
  Rng r(37);
  const double beta = 2.0;
  const double median = std::log(2.0) / beta;
  int below = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) below += r.exponential(beta) <= median;
  EXPECT_NEAR(static_cast<double>(below) / kN, 0.5, 0.01);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng r(41);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.exponential(0.7), 0.0);
}

TEST(Rng, GeometricMean) {
  Rng r(43);
  const double p = 0.25;
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(r.geometric(p));
  // mean failures before success = (1-p)/p = 3
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(47);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  r.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng r(53);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  const auto before = v;
  r.shuffle(v);
  EXPECT_NE(v, before);  // probability of identity is 1/100!
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng r(59);
  for (std::uint32_t n : {10u, 100u, 1000u}) {
    for (std::uint32_t k : {0u, 1u, 5u, n / 2, n}) {
      auto s = r.sample_without_replacement(n, k);
      EXPECT_EQ(s.size(), k);
      std::set<std::uint32_t> distinct(s.begin(), s.end());
      EXPECT_EQ(distinct.size(), k);
      for (auto x : s) EXPECT_LT(x, n);
    }
  }
}

TEST(Rng, SampleSmallKUsesAllElements) {
  // With k=2 from n=4 over many trials, every element should appear.
  Rng r(61);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 500; ++i) {
    for (auto x : r.sample_without_replacement(4, 2)) seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng a(67);
  Rng b = a.fork(1);
  Rng c = a.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (b() == c()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(MixSeed, DistinctStreamsDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 100; ++s) {
    seeds.insert(mix_seed(12345, s));
  }
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(Splitmix64, KnownGolden) {
  // Reference values from the public-domain splitmix64 implementation
  // walked from state 0.
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  EXPECT_EQ(first, 0xE220A8397B1DCDAFULL);
}

}  // namespace
}  // namespace radiocast::util
