// k-message pipelined broadcast (Lemma 2.3's full interface).
#include "core/multi_message.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace radiocast::core {
namespace {

std::vector<radio::Payload> make_messages(std::uint32_t k) {
  std::vector<radio::Payload> m(k);
  for (std::uint32_t i = 0; i < k; ++i) m[i] = 1000 + i;
  return m;
}

TEST(MultiMessage, SingleMessageOnPath) {
  const graph::Graph g = graph::path(30);
  const auto r =
      multi_message_broadcast(g, make_messages(1), MultiMessageParams{}, 1);
  ASSERT_TRUE(r.success);
  // period * (depth + 1) ideal; allow slack 2x.
  EXPECT_LE(r.rounds, 2ull * r.period * 31);
}

TEST(MultiMessage, ManyMessagesPipeline) {
  const graph::Graph g = graph::path(50);
  const auto k = 40u;
  const auto r =
      multi_message_broadcast(g, make_messages(k), MultiMessageParams{}, 2);
  ASSERT_TRUE(r.success);
  // The whole point: rounds ~ period*(D + k), NOT period*D*k.
  EXPECT_LT(r.pipeline_ratio, 2.0);
  EXPECT_LT(r.rounds, 4ull * r.period * (50 + k));
}

TEST(MultiMessage, EmptyMessageSetVacuous) {
  const graph::Graph g = graph::path(5);
  const auto r = multi_message_broadcast(g, {}, MultiMessageParams{}, 3);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.rounds, 0u);
}

TEST(MultiMessage, WorksOnDenseAndIrregularGraphs) {
  util::Rng rng(4);
  const graph::Graph graphs[] = {
      graph::grid(12, 12),
      graph::random_geometric(250, 0.1, rng),
      graph::path_of_cliques(15, 8),
      graph::star(50),
  };
  for (const auto& g : graphs) {
    const auto r = multi_message_broadcast(g, make_messages(10),
                                           MultiMessageParams{}, 4);
    EXPECT_TRUE(r.success) << g.summary();
    EXPECT_LT(r.pipeline_ratio, 3.0) << g.summary();
  }
}

TEST(MultiMessage, RootChoiceRespected) {
  const graph::Graph g = graph::path(20);
  MultiMessageParams p;
  p.root = 19;
  const auto r = multi_message_broadcast(g, make_messages(3), p, 5);
  EXPECT_TRUE(r.success);
}

TEST(MultiMessage, BadRootThrows) {
  const graph::Graph g = graph::path(5);
  MultiMessageParams p;
  p.root = 7;
  EXPECT_THROW(multi_message_broadcast(g, make_messages(1), p, 6),
               std::invalid_argument);
}

TEST(MultiMessage, BudgetRespected) {
  const graph::Graph g = graph::path(200);
  MultiMessageParams p;
  p.max_rounds = 10;
  const auto r = multi_message_broadcast(g, make_messages(5), p, 7);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.rounds, 10u);
}

TEST(MultiMessage, LinearInKNotMultiplicative) {
  // Doubling k must add ~period*k rounds, not double the total.
  const graph::Graph g = graph::grid(10, 10);
  const auto r1 = multi_message_broadcast(g, make_messages(20),
                                          MultiMessageParams{}, 8);
  const auto r2 = multi_message_broadcast(g, make_messages(40),
                                          MultiMessageParams{}, 8);
  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r2.success);
  EXPECT_LT(r2.rounds, r1.rounds + 3ull * r2.period * 25);
}

}  // namespace
}  // namespace radiocast::core
